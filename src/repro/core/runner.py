"""Shared machinery for setting up and driving discovery executions."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Sequence

from repro.core.node import DiscoveryNode
from repro.graphs.components import weakly_connected_components
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.obs.events import Recorder
from repro.sim.network import ChannelInterceptor, Simulator
from repro.sim.scheduler import GlobalFifoScheduler, RandomScheduler, Scheduler

NodeId = Hashable

__all__ = [
    "build_simulation",
    "default_step_budget",
    "id_bits_for",
    "run_at_scale",
    "transport_tuning",
]


def id_bits_for(n: int) -> int:
    """Bits per id for an ``n``-node system: ``ceil(log2 n)``, min 1."""
    if n <= 1:
        return 1
    return (n - 1).bit_length()


def transport_tuning(n: int, base_timeout: Optional[int] = None) -> Dict[str, int]:
    """Workload-scaled reliable-transport parameters for an ``n``-node run.

    The all-start-at-once discovery workload front-loads its congestion:
    the opening wave's queueing delay approaches ``base_timeout``, while
    the end-game (serial repair chains on the critical path) runs on a
    drained network where every RTO step is pure waiting.  So the adaptive
    (sr) transport gets a floor well under ``base_timeout`` -- letting
    drained-phase repairs go fast -- and a ceiling under ``2x`` -- bounding
    how much a backoff ladder can stall the critical path under sustained
    loss.  Class defaults on :class:`~repro.faults.reliable.ReliableNode`
    stay conservative for small hand-built simulations; these values are
    tuned for the n-node discovery workload (``BENCH_faults.json``).
    """
    if base_timeout is None:
        base_timeout = max(32, 4 * n)
    min_rto = max(4, (3 * base_timeout) // 16)
    max_rto = max(min_rto, (7 * base_timeout) // 4)
    return {"base_timeout": base_timeout, "min_rto": min_rto, "max_rto": max_rto}


def default_step_budget(graph: KnowledgeGraph) -> int:
    """A generous step cap that still catches protocol livelocks.

    The algorithms send ``O(n log n)`` protocol messages plus at most
    ``O(|E0|)`` id reports, and every step is a wake-up or one delivery, so
    a large constant times that is safely above any correct execution.
    """
    n = max(graph.n, 2)
    log_n = n.bit_length()
    return 10_000 + 200 * n * (log_n + 2) + 50 * graph.n_edges


def build_simulation(
    graph: KnowledgeGraph,
    variant: str,
    *,
    seed: Optional[int] = None,
    scheduler: Optional[Scheduler] = None,
    keep_trace: bool = False,
    wake_order: Optional[Sequence[NodeId]] = None,
    auto_wake: bool = True,
    greedy_queries: bool = False,
    channel_discipline: str = "fifo",
    channel_seed: int = 0,
    faults: Optional[ChannelInterceptor] = None,
    reliable: bool = False,
    base_timeout: Optional[int] = None,
    max_retries: int = 6,
    transport: str = "sr",
    obs: Optional[Recorder] = None,
    fast: bool = True,
) -> "tuple[Simulator, Dict[NodeId, DiscoveryNode]]":
    """Create a simulator with one :class:`DiscoveryNode` per graph node.

    ``scheduler`` wins over ``seed``; with neither, delivery is global-FIFO.
    With ``auto_wake`` every node gets a spontaneous wake-up scheduled in
    ``wake_order`` (default: graph order); pass ``auto_wake=False`` for
    custom wake-up regimes (e.g. the Union-Find reduction's sequential
    schedule, where only operation nodes wake spontaneously).

    ``faults`` attaches a :class:`~repro.sim.network.ChannelInterceptor`
    (typically a :class:`~repro.faults.FaultInjector`).  ``reliable=True``
    wraps every protocol node in the ack/retransmit transport
    (:class:`~repro.faults.ReliableNode`) so the discovery algorithms keep
    their exactly-once FIFO model over a faulty network; the returned
    ``nodes`` dict always maps to the *inner* protocol nodes, which is what
    verification and monitoring expect (``sim.nodes`` holds the wrappers).
    ``transport`` selects the transport generation (``"sr"`` selective
    repeat, ``"gbn"`` go-back-N); it only matters with ``reliable=True``.

    ``obs`` attaches a :class:`~repro.obs.events.Recorder` so the run
    emits the typed observability events; the default ``None`` keeps the
    simulator on its near-zero-overhead disabled path.

    ``fast`` (default on) lets the simulator use the compiled run loop of
    :mod:`repro.sim.fastcore` whenever the configuration qualifies; results
    are bit-identical either way, so ``fast=False`` exists for the
    benchmarks and the differential-equivalence suite.
    """
    if scheduler is None:
        scheduler = RandomScheduler(seed) if seed is not None else GlobalFifoScheduler()
    sim = Simulator(
        scheduler,
        id_bits=id_bits_for(graph.n),
        keep_trace=keep_trace,
        channel_discipline=channel_discipline,
        channel_seed=channel_seed,
        faults=faults,
        obs=obs,
        fast=fast,
    )
    sizes: Dict[NodeId, int] = {}
    if variant == "bounded":
        for component in weakly_connected_components(graph):
            for member in component:
                sizes[member] = len(component)
    if reliable:
        # Imported here: repro.faults builds on the sim layer, and pulling
        # it in unconditionally would make the core depend on it even for
        # the (common) fault-free runs.
        from repro.faults.reliable import ReliableNode

        tuning = transport_tuning(graph.n, base_timeout)
    nodes: Dict[NodeId, DiscoveryNode] = {}
    for node_id in graph.nodes:
        node = DiscoveryNode(
            node_id,
            graph.successors(node_id),
            variant=variant,
            component_size=sizes.get(node_id),
            greedy_queries=greedy_queries,
        )
        nodes[node_id] = node
        if reliable:
            sim.add_node(
                ReliableNode(
                    node,
                    max_retries=max_retries,
                    transport=transport,
                    **tuning,
                )
            )
        else:
            sim.add_node(node)
    if auto_wake:
        for node_id in wake_order if wake_order is not None else graph.nodes:
            sim.schedule_wake(node_id)
    return sim, nodes


def run_at_scale(
    graph,
    variant: str = "generic",
    *,
    seed=None,
    max_steps=None,
    greedy_queries: bool = False,
    verify: bool = True,
):
    """Run discovery on ``graph`` without building node objects at all.

    The million-node entry point: :func:`build_simulation` allocates a
    :class:`DiscoveryNode` (plus heaps, sets and dicts) per node, which at
    n = 10^6 costs gigabytes before the first message.  This delegates to
    the array-backed core (:func:`repro.core.arraystate.run_graph`), which
    holds the whole system in columnar arrays and returns a
    :class:`~repro.core.arraystate.ScaleResult` summary (steps, per-type
    stats, leaders, verification verdict).

    ``seed=None`` runs the global-FIFO schedule; an int seed replays the
    exact seeded :class:`~repro.sim.scheduler.RandomScheduler` execution
    ``build_simulation(seed=...)`` would produce -- the differential suite
    pins equal step counts, stats and leaders at small ``n``.
    """
    from repro.core.arraystate import run_graph

    return run_graph(
        graph,
        variant,
        seed=seed,
        max_steps=max_steps,
        greedy_queries=greedy_queries,
        verify=verify,
    )
