"""The Generic (Oblivious) algorithm runner (Section 4, Theorems 3, 5, 7).

The Oblivious model: component sizes are unknown, the graph need only be
weakly connected (per component), and the algorithm cannot detect
termination -- it reaches the problem definition's steady state instead,
which the simulator observes as quiescence.

Guarantees validated after every run (see :mod:`repro.verification`):
exactly one leader per weakly connected component, the leader knows every
id in its component, every non-leader's ``next`` pointer names its leader;
``O(n log n)`` messages and ``O(|E0| log n + n log^2 n)`` bits.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

from repro.core.result import DiscoveryResult, collect_result
from repro.core.runner import build_simulation, default_step_budget
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sim.scheduler import Scheduler

__all__ = ["run_generic"]


def run_generic(
    graph: KnowledgeGraph,
    *,
    seed: Optional[int] = None,
    scheduler: Optional[Scheduler] = None,
    wake_order: Optional[Sequence[Hashable]] = None,
    keep_trace: bool = False,
    max_steps: Optional[int] = None,
    greedy_queries: bool = False,
    fast: bool = True,
) -> DiscoveryResult:
    """Run the Generic algorithm on ``graph`` until quiescence.

    Parameters
    ----------
    graph:
        The initial knowledge graph ``(V, E0)``.
    seed:
        Use a seeded uniformly-random delivery schedule (ignored when
        ``scheduler`` is given; default is deterministic global-FIFO).
    scheduler:
        Explicit scheduling policy, e.g. an adversarial one.
    wake_order:
        Spontaneous wake-up order (default: graph node order).
    keep_trace:
        Record the full execution trace on the simulator.
    max_steps:
        Step budget; defaults to a generous bound derived from the graph.
    greedy_queries:
        Ablation: disable Section 4.1's query balancing (see
        :class:`~repro.core.node.DiscoveryNode`).
    fast:
        Allow the compiled run loop (:mod:`repro.sim.fastcore`); results
        are bit-identical, ``fast=False`` forces the object path.
    """
    sim, nodes = build_simulation(
        graph,
        "generic",
        seed=seed,
        scheduler=scheduler,
        keep_trace=keep_trace,
        wake_order=wake_order,
        greedy_queries=greedy_queries,
        fast=fast,
    )
    sim.run(max_steps if max_steps is not None else default_step_budget(graph))
    return collect_result(graph, nodes, sim, "generic")
