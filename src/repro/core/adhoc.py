"""Ad-hoc Resource Discovery (Sections 4.5.2 and 6, Theorems 2, 6, 8).

The Ad-hoc relaxation keeps properties (1), (2) and (4) of the problem but
replaces "every node knows its leader's id" with "every non-leader has a
pointer, and the pointers induce a directed path to its leader" (3a/3b).
Leaders therefore never broadcast ``conquer`` messages, which is what drops
the message complexity to the optimal ``Theta(n alpha(n, n))``.

Nodes that want the current id snapshot *probe* their leader: a ``probe``
message follows the ``next`` pointers and the reply path-compresses them,
giving the amortized ``O((m + n) alpha(m, n))`` bound for ``m`` probes.

:class:`AdhocNetwork` is the long-lived handle exposing the Section 6
dynamic operations -- late node arrivals and online link additions -- on a
running system.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Sequence, Tuple

from repro.core.node import DiscoveryNode
from repro.core.result import DiscoveryResult, collect_result
from repro.core.runner import (
    build_simulation,
    default_step_budget,
    id_bits_for,
    transport_tuning,
)
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sim.network import ChannelInterceptor, Simulator
from repro.sim.scheduler import Scheduler
from repro.sim.trace import MessageStats

NodeId = Hashable

__all__ = ["AdhocNetwork", "ProbeHandle", "run_adhoc"]


class ProbeHandle:
    """A probe in flight: poll :attr:`done` as the simulator advances.

    The non-blocking face of :meth:`AdhocNetwork.probe`: the steady-state
    service driver injects probes without running to quiescence and needs
    to observe, step by step, when each answer lands.  Leaders answer
    immediately (zero messages), so a handle may be born ``done``.
    """

    __slots__ = ("node", "_index", "_immediate")

    def __init__(self, node, index: int, immediate=None) -> None:
        self.node = node
        self._index = index
        self._immediate = immediate

    @property
    def done(self) -> bool:
        return self._immediate is not None or len(self.node.probe_results) > self._index

    @property
    def immediate(self) -> bool:
        """Whether the probe was answered locally, with zero messages."""
        return self._immediate is not None

    @property
    def answer(self) -> Optional[Tuple[NodeId, FrozenSet[NodeId]]]:
        """``(leader_id, ids)`` once :attr:`done`, else ``None``."""
        if self._immediate is not None:
            return self._immediate
        if len(self.node.probe_results) > self._index:
            return self.node.probe_results[self._index]
        return None


class AdhocNetwork:
    """A running Ad-hoc Resource Discovery system.

    Wraps the simulator, the protocol nodes, and the (growing) knowledge
    graph.  All mutating operations leave messages pending; call
    :meth:`run` (or use the convenience methods that do it for you) to
    drive the system back to quiescence.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        *,
        seed: Optional[int] = None,
        scheduler: Optional[Scheduler] = None,
        keep_trace: bool = False,
        wake_order: Optional[Sequence[NodeId]] = None,
        auto_wake: bool = True,
        fast: bool = True,
        faults: Optional[ChannelInterceptor] = None,
        reliable: bool = False,
        transport: str = "sr",
    ) -> None:
        self.graph = graph.copy()
        self.reliable = reliable
        self.transport = transport
        # Late joiners (add_node) must ride the same transport as the
        # initial population, with the same workload-scaled tuning.
        self._transport_kwargs = (
            dict(transport=transport, **transport_tuning(self.graph.n))
            if reliable
            else None
        )
        self.sim, self.nodes = build_simulation(
            self.graph,
            "adhoc",
            seed=seed,
            scheduler=scheduler,
            keep_trace=keep_trace,
            wake_order=wake_order,
            auto_wake=auto_wake,
            fast=fast,
            faults=faults,
            reliable=reliable,
            transport=transport,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, max_steps: Optional[int] = None) -> int:
        """Run to quiescence; return the number of steps executed."""
        budget = max_steps if max_steps is not None else default_step_budget(self.graph)
        return self.sim.run(budget)

    def wake(self, node_id: NodeId) -> None:
        """Schedule a spontaneous wake-up (used with ``auto_wake=False``)."""
        self.sim.schedule_wake(node_id)

    @property
    def stats(self) -> MessageStats:
        return self.sim.stats

    def result(self) -> DiscoveryResult:
        """Snapshot the current (quiescent) state."""
        return collect_result(self.graph, self.nodes, self.sim, "adhoc")

    # ------------------------------------------------------------------
    # Probes (Section 4.5.2)
    # ------------------------------------------------------------------
    def probe(self, node_id: NodeId) -> Tuple[NodeId, FrozenSet[NodeId]]:
        """Ask ``node_id`` for its component's current id snapshot.

        Returns ``(leader_id, ids)``.  Runs the system to quiescence so the
        probe (and any discovery work still in flight) completes.
        """
        handle = self.probe_async(node_id)
        if handle.done:
            return handle.answer
        self.run()
        if not handle.done:
            raise RuntimeError(f"probe from {node_id!r} produced no reply")
        return handle.answer

    def probe_async(self, node_id: NodeId) -> ProbeHandle:
        """Inject a probe without running the system; returns a handle.

        The open-loop seam: the service driver schedules probes at their
        arrival times and keeps stepping the simulator, polling each
        handle for completion to measure per-probe virtual-time latency.
        Raises :class:`~repro.core.node.ProtocolError` if the node is
        asleep or already has a probe outstanding -- call
        :meth:`can_probe` first to defer instead.
        """
        node = self.nodes[node_id]
        baseline = len(node.probe_results)
        immediate = node.initiate_probe()
        return ProbeHandle(node, baseline, immediate)

    def can_probe(self, node_id: NodeId) -> bool:
        """Whether :meth:`probe_async` would be accepted right now."""
        node = self.nodes.get(node_id)
        if node is None or not node.awake:
            return False
        return node.is_leader or not node.probe_outstanding

    # ------------------------------------------------------------------
    # Dynamic additions (Section 6)
    # ------------------------------------------------------------------
    def add_node(self, node_id: NodeId, known: Iterable[NodeId] = ()) -> None:
        """A new node joins, initially knowing the ids in ``known``.

        Per Section 6 "there is no difference between a node joining the
        system at a certain time and a node that wakes up at that time":
        the node is created asleep with ``known`` as its local set and a
        spontaneous wake-up is scheduled.
        """
        known = list(known)
        for other in known:
            if other not in self.graph:
                raise KeyError(f"new node {node_id!r} cannot know unknown {other!r}")
        self.graph.add_node(node_id)
        for other in known:
            self.graph.add_edge(node_id, other)
        node = DiscoveryNode(node_id, frozenset(known), variant="adhoc")
        self.nodes[node_id] = node
        if self._transport_kwargs is not None:
            from repro.faults.reliable import ReliableNode

            self.sim.add_node(ReliableNode(node, **self._transport_kwargs))
        else:
            self.sim.add_node(node)
        self.sim.schedule_wake(node_id)

    def add_link(self, u: NodeId, v: NodeId) -> None:
        """A new knowledge edge ``u -> v`` appears at runtime.

        Section 6's two cases are handled inside the node: an unreported
        edge just joins ``u.local``; a node that had already reported
        everything notifies its leader with a phase-0 flagged search.
        """
        if u not in self.graph or v not in self.graph:
            raise KeyError(f"add_link endpoints must exist: {u!r} -> {v!r}")
        if not self.graph.add_edge(u, v):
            return  # already in E (or a self-loop): not a new edge, no event
        self.nodes[u].notify_new_link(v)


def run_adhoc(
    graph: KnowledgeGraph,
    *,
    seed: Optional[int] = None,
    scheduler: Optional[Scheduler] = None,
    wake_order: Optional[Sequence[NodeId]] = None,
    keep_trace: bool = False,
    max_steps: Optional[int] = None,
    fast: bool = True,
) -> DiscoveryResult:
    """One-shot Ad-hoc run to quiescence (no dynamic operations)."""
    network = AdhocNetwork(
        graph,
        seed=seed,
        scheduler=scheduler,
        keep_trace=keep_trace,
        wake_order=wake_order,
        fast=fast,
    )
    network.run(max_steps)
    return network.result()
