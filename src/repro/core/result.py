"""Execution results of the discovery algorithms.

A :class:`DiscoveryResult` is the quiescent-state snapshot the problem
definition talks about: who is a leader, who belongs to whom, what the
leaders know, and what the execution cost in messages and bits -- the
quantities every theorem of the paper bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Set

from repro.core.node import DiscoveryNode
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sim.network import Simulator
from repro.sim.trace import MessageStats

NodeId = Hashable

__all__ = ["DiscoveryResult", "collect_result", "resolve_leader"]


@dataclass
class DiscoveryResult:
    """Quiescent-state snapshot of one discovery execution.

    Attributes
    ----------
    variant:
        ``"generic"``, ``"bounded"`` or ``"adhoc"``.
    leaders:
        Ids of nodes in a leader state, sorted by repr.
    leader_of:
        For every node, the leader its ``next``-pointer chain resolves to
        (itself for leaders).  For generic/bounded this chain has length
        <= 1 at quiescence; for Ad-hoc it may be longer (property 3b).
    knowledge:
        ``{leader: frozenset of ids it gathered}`` including itself.
    statuses:
        Final protocol state per node.
    path_lengths:
        ``next``-chain length from each node to its leader.
    stats:
        Message/bit counters for the whole execution.
    steps:
        Scheduler steps executed (wake-ups + deliveries).
    """

    variant: str
    n: int
    n_edges: int
    leaders: List[NodeId]
    leader_of: Dict[NodeId, NodeId]
    knowledge: Dict[NodeId, FrozenSet[NodeId]]
    statuses: Dict[NodeId, str]
    path_lengths: Dict[NodeId, int]
    stats: MessageStats
    steps: int

    @property
    def total_messages(self) -> int:
        return self.stats.total_messages

    @property
    def total_bits(self) -> int:
        return self.stats.total_bits

    @property
    def max_path_length(self) -> int:
        return max(self.path_lengths.values(), default=0)

    def leader_for(self, node: NodeId) -> NodeId:
        return self.leader_of[node]

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.variant}: n={self.n} |E0|={self.n_edges} "
            f"leaders={len(self.leaders)} messages={self.total_messages} "
            f"bits={self.total_bits} steps={self.steps}"
        )


def resolve_leader(nodes: Dict[NodeId, DiscoveryNode], start: NodeId) -> NodeId:
    """Follow ``next`` pointers from ``start`` to a leader (cycle-guarded)."""
    seen: Set[NodeId] = set()
    current = start
    while True:
        node = nodes[current]
        if node.is_leader:
            return current
        if node.next == current or current in seen:
            raise RuntimeError(
                f"next-pointer chain from {start!r} stuck at {current!r} "
                f"(status {node.status})"
            )
        seen.add(current)
        current = node.next


def collect_result(
    graph: KnowledgeGraph,
    nodes: Dict[NodeId, DiscoveryNode],
    sim: Simulator,
    variant: str,
) -> DiscoveryResult:
    """Snapshot the quiescent system into a :class:`DiscoveryResult`."""
    leaders = sorted(
        (node_id for node_id, node in nodes.items() if node.is_leader), key=repr
    )
    leader_of: Dict[NodeId, NodeId] = {}
    path_lengths: Dict[NodeId, int] = {}
    for node_id, node in nodes.items():
        if node.is_leader:
            leader_of[node_id] = node_id
            path_lengths[node_id] = 0
            continue
        length = 0
        current = node_id
        seen: Set[NodeId] = set()
        while not nodes[current].is_leader:
            if current in seen:
                raise RuntimeError(f"next-pointer cycle through {current!r}")
            seen.add(current)
            current = nodes[current].next
            length += 1
        leader_of[node_id] = current
        path_lengths[node_id] = length
    knowledge = {
        leader: nodes[leader].knowledge for leader in leaders
    }
    statuses = {node_id: node.status for node_id, node in nodes.items()}
    return DiscoveryResult(
        variant=variant,
        n=graph.n,
        n_edges=graph.n_edges,
        leaders=leaders,
        leader_of=leader_of,
        knowledge=knowledge,
        statuses=statuses,
        path_lengths=path_lengths,
        stats=sim.stats.snapshot(),
        steps=sim.steps,
    )
