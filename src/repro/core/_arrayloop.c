/* C delivery loop for the array-backed protocol core (repro.core.arraystate).
 *
 * Compiled on demand by repro/core/arrayloop.py (plain `cc -O2 -shared`);
 * the build is best-effort and every failure falls back to the pure-Python
 * loop, so this file must never be required for correctness.
 *
 * Contract (see arraystate.ArrayCore.run_loop): run() executes steps of the
 * exact same state machine over the same columnar state, and hands any step
 * it cannot reproduce bit-for-bit back to Python *before* mutating it:
 *
 *   run(core, pool, pool_append, mode, getrandbits, stop, cell) -> (code, aux)
 *
 *   code 0: pool drained (quiescence candidate; caller's `while pool`
 *           re-checks).
 *   code 1: step limit boundary: a counted step just finished with
 *           steps >= stop; Python evaluates `quiescent()` and raises
 *           StepLimitExceeded exactly like its own loop.
 *   code 2: step deopt; aux is the already-popped pool token (>= 0, a
 *           deliver).  The channel head was only *peeked* and the step was
 *           not counted; the only possible prior mutation is the
 *           wake-explore of the destination, which Python's own
 *           `if not awake[dst]` guard makes idempotent.  Python re-executes
 *           the full step body (and its error paths) on the object closures.
 *   code 3: pump resume; aux is the node whose inbox pump hit a message the
 *           C side cannot handle.  The step was counted and the message is
 *           still at the inbox head; Python's pump() continues from the
 *           current inbox/deferred state (pump is resumable by design).
 *
 * cell is a one-element list holding the absolute step count; it is read at
 * entry and written back on *every* exit -- including exceptions -- so the
 * caller's steps_out accounting survives a handler raise mid-run.
 *
 * Parity rules encoded here:
 *  - Only prechecked steps are executed; every ProtocolError path in the
 *    Python handlers is unreachable because can_handle() routes it to
 *    Python first (code 2/3).  The one exception is the self-send guard in
 *    emit(), which raises the same SimulationError with the same message.
 *  - Pool, channel, counts and `order` mutations happen in the exact order
 *    the Python handlers produce them.
 *  - Heap *layout* may differ from heapq's (sift details), but pop order is
 *    value-determined (ranks are unique) and the heaps are rebuilt from the
 *    live sets at materialization, so layout is unobservable.
 *  - Random mode inlines the same getrandbits rejection loop the Python
 *    loop inlines; a popped token is never "un-popped" (the draw is spent),
 *    it is handed over via code 2.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <string.h>

/* Wire tags (repro.core.messages; order asserted by the loader). */
#define T_QUERY 0
#define T_QUERY_REPLY 1
#define T_SEARCH 2
#define T_RELEASE 3
#define T_MERGE_ACCEPT 4
#define T_MERGE_FAIL 5
#define T_INFO 6
#define T_CONQUER 7
#define T_MORE_DONE 8
#define T_PROBE 9
#define T_PROBE_REPLY 10
#define N_TAGS 11

/* Status codes (repro.core.node STATUS_NAMES order; loader-asserted). */
#define ST_ASLEEP 0
#define ST_EXPLORE 1
#define ST_WAIT 2
#define ST_CONQUERED 3
#define ST_CONQUEROR 4
#define ST_PASSIVE 5
#define ST_INACTIVE 6
#define ST_TERMINATED 7

#define V_GENERIC 0
#define V_BOUNDED 1
#define V_ADHOC 2

#define MODE_FIFO 0
#define MODE_LIFO 1
#define MODE_RANDOM 2

/* run() result codes. */
#define RC_DRAINED 0
#define RC_LIMIT 1
#define RC_DEOPT 2
#define RC_PUMP 3

/* ------------------------------------------------------------------ */
/* configure()-provided globals                                        */
/* ------------------------------------------------------------------ */
static PyObject *g_deque_type;    /* collections.deque */
static PyObject *g_sim_error;     /* repro.sim.network.SimulationError */
static PyObject *g_msg_types;     /* tuple of msg_type strings, tag order */
static PyObject *g_wire_ma;       /* WIRE_MERGE_ACCEPT singleton */
static PyObject *g_wire_mf;       /* WIRE_MERGE_FAIL singleton */
static PyObject *g_wire_md_t;     /* WIRE_MORE_DONE_TRUE singleton */
static PyObject *g_wire_md_f;     /* WIRE_MORE_DONE_FALSE singleton */
static PyObject *g_greedy_k;      /* 1 << 62 as a PyLong */
static PyObject *g_tag_objs[N_TAGS];
static PyObject *g_k_objs[65];    /* small ints for getrandbits(k) */
static PyObject *g_zero;
static PyObject *g_neg_one;
static PyObject *s_append, *s_popleft, *s_appendleft;
static int g_configured = 0;

#define GREEDY_K_VAL (1LL << 62)

/* ------------------------------------------------------------------ */
/* Per-call state: every column of the ArrayCore as a direct pointer.  */
/* ------------------------------------------------------------------ */
typedef struct {
    PyObject *core;
    Py_ssize_t n;
    /* bytearray-backed columns (object ref + raw pointer) */
    PyObject *status_o, *awake_o, *aw_rel_o, *aw_info_o, *stale_o,
        *variant_o, *greedy_o;
    char *status, *awake, *aw_rel, *aw_info, *stale, *variant, *greedy;
    /* list-backed columns */
    PyObject *ids, *nxt, *phase, *aw_query, *csize;
    PyObject *local, *done, *more, *unaware, *unexp, *mheap, *uheap;
    PyObject *previous, *inbox, *deferred;
    PyObject *rrank, *by_rrank, *nrank;
    PyObject *chanq, *chana, *chanp, *chan_src, *chan_dst, *out, *iobj;
    PyObject *counts_l, *xtra_l, *order;
    long counts[N_TAGS], xtra[N_TAGS];
    /* run parameters */
    PyObject *pool, *pool_append, *pool_popleft, *getrandbits;
    int mode;
    long stop;
    long steps;
    /* scratch for rank sorts */
    struct rpair *scratch;
    Py_ssize_t scratch_cap;
} S;

struct rpair {
    long rank;
    long id;
};

static int
cmp_rpair(const void *a, const void *b)
{
    long ra = ((const struct rpair *)a)->rank;
    long rb = ((const struct rpair *)b)->rank;
    return (ra > rb) - (ra < rb);
}

static struct rpair *
get_scratch(S *s, Py_ssize_t need)
{
    if (need > s->scratch_cap) {
        Py_ssize_t cap = need < 64 ? 64 : need;
        struct rpair *p = PyMem_Realloc(s->scratch, cap * sizeof(struct rpair));
        if (p == NULL) {
            PyErr_NoMemory();
            return NULL;
        }
        s->scratch = p;
        s->scratch_cap = cap;
    }
    return s->scratch;
}

/* Canonical int object for a node/channel index in [0, n). */
#define IOBJ(s, i) PyList_GET_ITEM((s)->iobj, (i))
/* long value of a PyList slot holding an int. */
#define GETL(list, i) PyLong_AsLong(PyList_GET_ITEM((list), (i)))

/* Store an int object (borrowed) into a list slot. */
static int
set_item_obj(PyObject *list, Py_ssize_t i, PyObject *v)
{
    Py_INCREF(v);
    return PyList_SetItem(list, i, v);
}

/* ------------------------------------------------------------------ */
/* Heaps: PyLists of unique rank ints, min-heap order.                 */
/* ------------------------------------------------------------------ */
static int
heap_push(PyObject *heap, long val)
{
    PyObject *v = PyLong_FromLong(val);
    if (v == NULL)
        return -1;
    if (PyList_Append(heap, v) < 0) {
        Py_DECREF(v);
        return -1;
    }
    Py_DECREF(v);
    Py_ssize_t pos = PyList_GET_SIZE(heap) - 1;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        PyObject *po = PyList_GET_ITEM(heap, parent);
        PyObject *co = PyList_GET_ITEM(heap, pos);
        if (PyLong_AsLong(co) < PyLong_AsLong(po)) {
            PyList_SET_ITEM(heap, parent, co);
            PyList_SET_ITEM(heap, pos, po);
            pos = parent;
        }
        else
            break;
    }
    return 0;
}

/* Pop the min; caller guarantees the heap is non-empty. */
static long
heap_pop(PyObject *heap)
{
    Py_ssize_t size = PyList_GET_SIZE(heap);
    PyObject *last = PyList_GET_ITEM(heap, size - 1);
    Py_INCREF(last);
    PyList_SetSlice(heap, size - 1, size, NULL);
    size -= 1;
    if (size == 0) {
        long v = PyLong_AsLong(last);
        Py_DECREF(last);
        return v;
    }
    PyObject *root = PyList_GET_ITEM(heap, 0);
    long rv = PyLong_AsLong(root);
    PyList_SET_ITEM(heap, 0, last); /* steals our ref */
    Py_DECREF(root);
    /* sift the displaced value down */
    Py_ssize_t pos = 0;
    long lv = PyLong_AsLong(last);
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= size)
            break;
        if (child + 1 < size &&
            PyLong_AsLong(PyList_GET_ITEM(heap, child + 1)) <
                PyLong_AsLong(PyList_GET_ITEM(heap, child)))
            child += 1;
        PyObject *co = PyList_GET_ITEM(heap, child);
        if (PyLong_AsLong(co) < lv) {
            PyObject *po = PyList_GET_ITEM(heap, pos);
            PyList_SET_ITEM(heap, pos, co);
            PyList_SET_ITEM(heap, child, po);
            pos = child;
        }
        else
            break;
    }
    return rv;
}

/* ------------------------------------------------------------------ */
/* Transport                                                           */
/* ------------------------------------------------------------------ */
/* emit(src, dst, tag, msg): msg is borrowed.  Mirrors the Python closure
 * exactly, including the self-send SimulationError. */
static int
emit(S *s, long src, long dst, int tag, PyObject *msg)
{
    if (dst == src) {
        PyErr_Format(g_sim_error,
                     "node %R tried to message itself with %R; "
                     "self-interactions must be simulated internally "
                     "(Section 4.1)",
                     PyList_GET_ITEM(s->ids, src),
                     PyTuple_GET_ITEM(g_msg_types, tag));
        return -1;
    }
    PyObject *d = PyList_GET_ITEM(s->out, src);
    if (d == Py_None) {
        d = PyDict_New();
        if (d == NULL)
            return -1;
        PyList_SetItem(s->out, src, d); /* steals; list keeps d alive */
    }
    PyObject *key = IOBJ(s, dst);
    PyObject *cid_obj = PyDict_GetItemWithError(d, key);
    long cid;
    if (cid_obj == NULL) {
        if (PyErr_Occurred())
            return -1;
        cid = (long)PyList_GET_SIZE(s->chanq);
        PyObject *q = PyObject_CallNoArgs(g_deque_type);
        if (q == NULL)
            return -1;
        PyObject *ap = PyObject_GetAttr(q, s_append);
        PyObject *pp = ap ? PyObject_GetAttr(q, s_popleft) : NULL;
        int fail = (ap == NULL || pp == NULL ||
                    PyList_Append(s->chanq, q) < 0 ||
                    PyList_Append(s->chana, ap) < 0 ||
                    PyList_Append(s->chanp, pp) < 0 ||
                    PyList_Append(s->chan_src, IOBJ(s, src)) < 0 ||
                    PyList_Append(s->chan_dst, key) < 0);
        Py_DECREF(q);
        Py_XDECREF(ap);
        Py_XDECREF(pp);
        if (fail)
            return -1;
        PyObject *cid_new = PyLong_FromLong(cid);
        if (cid_new == NULL)
            return -1;
        int r = PyDict_SetItem(d, key, cid_new);
        Py_DECREF(cid_new);
        if (r < 0)
            return -1;
    }
    else {
        cid = PyLong_AsLong(cid_obj);
    }
    if (s->counts[tag]++ == 0) {
        if (PyList_Append(s->order, g_tag_objs[tag]) < 0)
            return -1;
    }
    PyObject *r = PyObject_CallOneArg(PyList_GET_ITEM(s->chana, cid), msg);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    PyObject *tok = PyLong_FromLong(cid);
    if (tok == NULL)
        return -1;
    r = PyObject_CallOneArg(s->pool_append, tok);
    Py_DECREF(tok);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

static int
emitx(S *s, long src, long dst, int tag, PyObject *msg, long extra_ids)
{
    s->xtra[tag] += extra_ids;
    return emit(s, src, dst, tag, msg);
}

/* ------------------------------------------------------------------ */
/* Deterministic-choice helpers                                        */
/* ------------------------------------------------------------------ */
#define C_ERR (-2) /* error sentinel for long-returning helpers */

static int
add_more(S *s, long i, long w)
{
    PyObject *mo = PyList_GET_ITEM(s->more, i);
    PyObject *wo = IOBJ(s, w);
    int c = PySet_Contains(mo, wo);
    if (c < 0)
        return -1;
    if (!c) {
        if (PySet_Add(mo, wo) < 0)
            return -1;
        if (heap_push(PyList_GET_ITEM(s->mheap, i), GETL(s->rrank, w)) < 0)
            return -1;
    }
    return 0;
}

static int
add_unexplored(S *s, long i, long u)
{
    PyObject *ux = PyList_GET_ITEM(s->unexp, i);
    PyObject *uo = IOBJ(s, u);
    int c = PySet_Contains(ux, uo);
    if (c < 0)
        return -1;
    if (!c) {
        if (PySet_Add(ux, uo) < 0)
            return -1;
        if (heap_push(PyList_GET_ITEM(s->uheap, i), GETL(s->rrank, u)) < 0)
            return -1;
    }
    return 0;
}

static long
peek_more(S *s, long i)
{
    PyObject *heap = PyList_GET_ITEM(s->mheap, i);
    PyObject *mo = PyList_GET_ITEM(s->more, i);
    while (PyList_GET_SIZE(heap) > 0) {
        long w = GETL(s->by_rrank, PyLong_AsLong(PyList_GET_ITEM(heap, 0)));
        int c = PySet_Contains(mo, IOBJ(s, w));
        if (c < 0)
            return C_ERR;
        if (c)
            return w;
        heap_pop(heap);
    }
    return -1;
}

static long
pop_unexplored(S *s, long i)
{
    PyObject *heap = PyList_GET_ITEM(s->uheap, i);
    PyObject *ux = PyList_GET_ITEM(s->unexp, i);
    while (PyList_GET_SIZE(heap) > 0) {
        long u = GETL(s->by_rrank, heap_pop(heap));
        PyObject *uo = IOBJ(s, u);
        int c = PySet_Contains(ux, uo);
        if (c < 0)
            return C_ERR;
        if (!c)
            continue;
        if (PySet_Discard(ux, uo) < 0)
            return C_ERR;
        if (u == i)
            continue;
        c = PySet_Contains(PyList_GET_ITEM(s->more, i), uo);
        if (c < 0)
            return C_ERR;
        if (c)
            continue;
        c = PySet_Contains(PyList_GET_ITEM(s->done, i), uo);
        if (c < 0)
            return C_ERR;
        if (c)
            continue;
        c = PySet_Contains(PyList_GET_ITEM(s->unaware, i), uo);
        if (c < 0)
            return C_ERR;
        if (c)
            continue;
        return u;
    }
    return -1;
}

/* Collect a set of node ints into the rank-sorted scratch; returns the
 * member count or -1.  Equivalent to arraystate.rank_sorted (ranks are
 * unique, so qsort and the density-rule variants agree exactly). */
static Py_ssize_t
collect_rank_sorted(S *s, PyObject *set_obj)
{
    Py_ssize_t m = PySet_GET_SIZE(set_obj);
    struct rpair *buf = get_scratch(s, m);
    if (buf == NULL)
        return -1;
    PyObject *it = PyObject_GetIter(set_obj);
    if (it == NULL)
        return -1;
    Py_ssize_t k = 0;
    PyObject *item;
    while ((item = PyIter_Next(it)) != NULL) {
        long v = PyLong_AsLong(item);
        Py_DECREF(item);
        if (v == -1 && PyErr_Occurred()) {
            Py_DECREF(it);
            return -1;
        }
        buf[k].id = v;
        buf[k].rank = GETL(s->rrank, v);
        k++;
    }
    Py_DECREF(it);
    if (PyErr_Occurred())
        return -1;
    qsort(buf, k, sizeof(struct rpair), cmp_rpair);
    return k;
}

/* ------------------------------------------------------------------ */
/* EXPLORE (Figure 3)                                                  */
/* ------------------------------------------------------------------ */
/* take_local: returns a new frozenset ref; *done_flag set to 1 when the
 * whole local set was taken. */
static PyObject *
take_local(S *s, long i, long long k, int *done_flag)
{
    PyObject *loc = PyList_GET_ITEM(s->local, i);
    Py_ssize_t m = PySet_GET_SIZE(loc);
    if ((long long)m <= k) {
        PyObject *taken = PyFrozenSet_New(loc);
        if (taken == NULL)
            return NULL;
        if (PySet_Clear(loc) < 0) {
            Py_DECREF(taken);
            return NULL;
        }
        *done_flag = 1;
        return taken;
    }
    /* k < m: the k rank-smallest members (k_smallest equivalence). */
    Py_ssize_t cnt = collect_rank_sorted(s, loc);
    if (cnt < 0)
        return NULL;
    PyObject *taken = PyFrozenSet_New(NULL);
    if (taken == NULL)
        return NULL;
    for (Py_ssize_t j = 0; j < (Py_ssize_t)k; j++) {
        PyObject *vo = IOBJ(s, s->scratch[j].id);
        if (PySet_Add(taken, vo) < 0 || PySet_Discard(loc, vo) < 0) {
            Py_DECREF(taken);
            return NULL;
        }
    }
    *done_flag = 0;
    return taken;
}

static int
ingest_reply(S *s, long i, long source, PyObject *id_set, int done_flag)
{
    PyObject *mo = PyList_GET_ITEM(s->more, i);
    PyObject *dn = PyList_GET_ITEM(s->done, i);
    if (done_flag) {
        PyObject *so = IOBJ(s, source);
        int c = PySet_Contains(mo, so);
        if (c < 0)
            return -1;
        if (c) {
            if (PySet_Discard(mo, so) < 0 || PySet_Add(dn, so) < 0)
                return -1;
        }
    }
    PyObject *it = PyObject_GetIter(id_set);
    if (it == NULL)
        return -1;
    PyObject *item;
    while ((item = PyIter_Next(it)) != NULL) {
        long fresh = PyLong_AsLong(item);
        int c1 = PySet_Contains(mo, item);
        int c2 = c1 == 0 ? PySet_Contains(dn, item) : 1;
        Py_DECREF(item);
        if (c1 < 0 || c2 < 0)
            goto fail;
        if (c1 == 0 && c2 == 0 && fresh != i) {
            if (add_unexplored(s, i, fresh) < 0)
                goto fail;
        }
    }
    Py_DECREF(it);
    return PyErr_Occurred() ? -1 : 0;
fail:
    Py_DECREF(it);
    return -1;
}

static int explore(S *s, long i);

static int
terminate_bounded(S *s, long i)
{
    s->status[i] = ST_TERMINATED;
    PyObject *cq = PyTuple_New(3);
    if (cq == NULL)
        return -1;
    Py_INCREF(g_tag_objs[T_CONQUER]);
    PyTuple_SET_ITEM(cq, 0, g_tag_objs[T_CONQUER]);
    PyObject *io = IOBJ(s, i);
    Py_INCREF(io);
    PyTuple_SET_ITEM(cq, 1, io);
    PyObject *ph = PyList_GET_ITEM(s->phase, i);
    Py_INCREF(ph);
    PyTuple_SET_ITEM(cq, 2, ph);
    Py_ssize_t cnt = collect_rank_sorted(s, PyList_GET_ITEM(s->done, i));
    if (cnt < 0) {
        Py_DECREF(cq);
        return -1;
    }
    for (Py_ssize_t j = 0; j < cnt; j++) {
        long w = s->scratch[j].id;
        if (w != i) {
            if (emit(s, i, w, T_CONQUER, cq) < 0) {
                Py_DECREF(cq);
                return -1;
            }
        }
    }
    Py_DECREF(cq);
    return 0;
}

static int
explore(S *s, long i)
{
    s->status[i] = ST_EXPLORE;
    for (;;) {
        if (s->variant[i] == V_BOUNDED &&
            PySet_GET_SIZE(PyList_GET_ITEM(s->done, i)) ==
                GETL(s->csize, i))
            return terminate_bounded(s, i);
        long target = pop_unexplored(s, i);
        if (target == C_ERR)
            return -1;
        if (target >= 0) {
            s->status[i] = ST_WAIT;
            s->aw_rel[i] = 1;
            PyObject *msg = PyTuple_New(5);
            if (msg == NULL)
                return -1;
            Py_INCREF(g_tag_objs[T_SEARCH]);
            PyTuple_SET_ITEM(msg, 0, g_tag_objs[T_SEARCH]);
            PyObject *io = IOBJ(s, i);
            Py_INCREF(io);
            PyTuple_SET_ITEM(msg, 1, io);
            PyObject *ph = PyList_GET_ITEM(s->phase, i);
            Py_INCREF(ph);
            PyTuple_SET_ITEM(msg, 2, ph);
            PyObject *to = IOBJ(s, target);
            Py_INCREF(to);
            PyTuple_SET_ITEM(msg, 3, to);
            Py_INCREF(Py_False);
            PyTuple_SET_ITEM(msg, 4, Py_False);
            int r = emit(s, i, target, T_SEARCH, msg);
            Py_DECREF(msg);
            return r;
        }
        long cand = peek_more(s, i);
        if (cand == C_ERR)
            return -1;
        if (cand < 0) {
            s->status[i] = ST_WAIT;
            s->aw_rel[i] = 0;
            return 0;
        }
        long long k;
        if (s->greedy[i])
            k = GREEDY_K_VAL;
        else
            k = (long long)PySet_GET_SIZE(PyList_GET_ITEM(s->more, i)) +
                PySet_GET_SIZE(PyList_GET_ITEM(s->done, i)) + 1;
        if (cand == i) {
            int done_flag;
            PyObject *taken = take_local(s, i, k, &done_flag);
            if (taken == NULL)
                return -1;
            int r = ingest_reply(s, i, i, taken, done_flag);
            Py_DECREF(taken);
            if (r < 0)
                return -1;
            continue;
        }
        if (set_item_obj(s->aw_query, i, IOBJ(s, cand)) < 0)
            return -1;
        PyObject *ko;
        if (s->greedy[i]) {
            ko = g_greedy_k;
            Py_INCREF(ko);
        }
        else {
            ko = PyLong_FromLongLong(k);
            if (ko == NULL)
                return -1;
        }
        PyObject *msg = PyTuple_New(2);
        if (msg == NULL) {
            Py_DECREF(ko);
            return -1;
        }
        Py_INCREF(g_tag_objs[T_QUERY]);
        PyTuple_SET_ITEM(msg, 0, g_tag_objs[T_QUERY]);
        PyTuple_SET_ITEM(msg, 1, ko); /* steals */
        int r = emit(s, i, cand, T_QUERY, msg);
        Py_DECREF(msg);
        return r;
    }
}

/* ------------------------------------------------------------------ */
/* Section 6 late-learned ids                                          */
/* ------------------------------------------------------------------ */
static int
absorb_learned_id(S *s, long i, long other)
{
    if (other == i)
        return 0;
    PyObject *loc = PyList_GET_ITEM(s->local, i);
    PyObject *oo = IOBJ(s, other);
    int c = PySet_Contains(loc, oo);
    if (c < 0)
        return -1;
    if (c)
        return 0;
    if (s->status[i] == ST_INACTIVE) {
        int had_reported_all = PySet_GET_SIZE(loc) == 0;
        if (PySet_Add(loc, oo) < 0)
            return -1;
        if (had_reported_all) {
            PyObject *msg = PyTuple_New(5);
            if (msg == NULL)
                return -1;
            Py_INCREF(g_tag_objs[T_SEARCH]);
            PyTuple_SET_ITEM(msg, 0, g_tag_objs[T_SEARCH]);
            PyObject *io = IOBJ(s, i);
            Py_INCREF(io);
            PyTuple_SET_ITEM(msg, 1, io);
            Py_INCREF(g_zero);
            PyTuple_SET_ITEM(msg, 2, g_zero);
            Py_INCREF(io);
            PyTuple_SET_ITEM(msg, 3, io);
            Py_INCREF(Py_True);
            PyTuple_SET_ITEM(msg, 4, Py_True);
            int r = emit(s, i, GETL(s->nxt, i), T_SEARCH, msg);
            Py_DECREF(msg);
            return r;
        }
        return 0;
    }
    if (PySet_Add(loc, oo) < 0)
        return -1;
    PyObject *dn = PyList_GET_ITEM(s->done, i);
    PyObject *io = IOBJ(s, i);
    c = PySet_Contains(dn, io);
    if (c < 0)
        return -1;
    if (c) {
        if (PySet_Discard(dn, io) < 0)
            return -1;
        if (add_more(s, i, i) < 0)
            return -1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Handlers                                                            */
/* ------------------------------------------------------------------ */
/* Section 4.2 target absorption; returns a NEW ref (msg or a rewrite). */
static PyObject *
absorb_target(S *s, long i, PyObject *msg)
{
    if (PyLong_AsLong(PyTuple_GET_ITEM(msg, 3)) == i) {
        PyObject *init = PyTuple_GET_ITEM(msg, 1);
        PyObject *loc = PyList_GET_ITEM(s->local, i);
        int c = PySet_Contains(loc, init);
        if (c < 0)
            return NULL;
        if (!c) {
            if (PySet_Add(loc, init) < 0)
                return NULL;
            PyObject *m = PyTuple_New(5);
            if (m == NULL)
                return NULL;
            Py_INCREF(g_tag_objs[T_SEARCH]);
            PyTuple_SET_ITEM(m, 0, g_tag_objs[T_SEARCH]);
            Py_INCREF(init);
            PyTuple_SET_ITEM(m, 1, init);
            PyObject *t2 = PyTuple_GET_ITEM(msg, 2);
            Py_INCREF(t2);
            PyTuple_SET_ITEM(m, 2, t2);
            PyObject *t3 = PyTuple_GET_ITEM(msg, 3);
            Py_INCREF(t3);
            PyTuple_SET_ITEM(m, 3, t3);
            Py_INCREF(Py_True);
            PyTuple_SET_ITEM(m, 4, Py_True);
            return m;
        }
    }
    Py_INCREF(msg);
    return msg;
}

/* Build (T_RELEASE, i, merge_flag, initiator_obj, phase_obj): new ref. */
static PyObject *
make_release(S *s, long i, int is_merge, PyObject *initiator)
{
    PyObject *rel = PyTuple_New(5);
    if (rel == NULL)
        return NULL;
    Py_INCREF(g_tag_objs[T_RELEASE]);
    PyTuple_SET_ITEM(rel, 0, g_tag_objs[T_RELEASE]);
    PyObject *io = IOBJ(s, i);
    Py_INCREF(io);
    PyTuple_SET_ITEM(rel, 1, io);
    PyObject *fo = is_merge ? Py_True : Py_False;
    Py_INCREF(fo);
    PyTuple_SET_ITEM(rel, 2, fo);
    Py_INCREF(initiator);
    PyTuple_SET_ITEM(rel, 3, initiator);
    PyObject *ph = PyList_GET_ITEM(s->phase, i);
    Py_INCREF(ph);
    PyTuple_SET_ITEM(rel, 4, ph);
    return rel;
}

static int
leader_on_search(S *s, long i, long sender, PyObject *msg)
{
    PyObject *m = absorb_target(s, i, msg);
    if (m == NULL)
        return -1;
    long initiator = PyLong_AsLong(PyTuple_GET_ITEM(m, 1));
    long mphase = PyLong_AsLong(PyTuple_GET_ITEM(m, 2));
    int is_new = PyObject_IsTrue(PyTuple_GET_ITEM(m, 4));
    if (is_new < 0)
        goto fail;
    if (is_new) {
        long tgt = PyLong_AsLong(PyTuple_GET_ITEM(m, 3));
        PyObject *dn = PyList_GET_ITEM(s->done, i);
        PyObject *to = IOBJ(s, tgt);
        int c = PySet_Contains(dn, to);
        if (c < 0)
            goto fail;
        if (c) {
            if (PySet_Discard(dn, to) < 0 || add_more(s, i, tgt) < 0)
                goto fail;
        }
    }
    long ph = GETL(s->phase, i);
    int outranks =
        mphase > ph ||
        (mphase == ph && GETL(s->nrank, initiator) > GETL(s->nrank, i));
    PyObject *rel = make_release(s, i, outranks, PyTuple_GET_ITEM(m, 1));
    if (rel == NULL)
        goto fail;
    int r = emit(s, i, sender, T_RELEASE, rel);
    Py_DECREF(rel);
    if (r < 0)
        goto fail;
    if (outranks) {
        if (s->status[i] == ST_WAIT && s->aw_rel[i])
            s->stale[i] = 1;
        s->status[i] = ST_CONQUERED;
    }
    else if (s->status[i] == ST_WAIT && !s->aw_rel[i]) {
        /* Python: `unexp[i] or peek_more(i) >= 0`, short-circuited. */
        int go = PySet_GET_SIZE(PyList_GET_ITEM(s->unexp, i)) > 0;
        if (!go) {
            long pm = peek_more(s, i);
            if (pm == C_ERR)
                goto fail;
            go = pm >= 0;
        }
        if (go && explore(s, i) < 0)
            goto fail;
    }
    Py_DECREF(m);
    return 0;
fail:
    Py_DECREF(m);
    return -1;
}

static int
consume_own_release(S *s, long i, PyObject *msg)
{
    long leader = PyLong_AsLong(PyTuple_GET_ITEM(msg, 1));
    int is_merge = PyObject_IsTrue(PyTuple_GET_ITEM(msg, 2));
    if (is_merge < 0)
        return -1;
    if (s->status[i] == ST_WAIT && s->aw_rel[i]) {
        s->aw_rel[i] = 0;
        if (!is_merge) {
            if (leader == i)
                return explore(s, i);
            if (absorb_learned_id(s, i, leader) < 0)
                return -1;
            s->status[i] = ST_PASSIVE;
            return 0;
        }
        s->status[i] = ST_CONQUEROR;
        s->aw_info[i] = 1;
        return emit(s, i, leader, T_MERGE_ACCEPT, g_wire_ma);
    }
    /* precheck guarantees PASSIVE/CONQUERED/INACTIVE here */
    if (is_merge) {
        if (emit(s, i, leader, T_MERGE_FAIL, g_wire_mf) < 0)
            return -1;
    }
    if (s->stale[i]) {
        s->stale[i] = 0;
        if (absorb_learned_id(s, i, leader) < 0)
            return -1;
    }
    return 0;
}

static int
exec_search(S *s, long i, long sender, PyObject *msg)
{
    int st = s->status[i];
    if (st == ST_EXPLORE || st == ST_CONQUERED || st == ST_CONQUEROR)
        return 0; /* defer */
    if (st == ST_INACTIVE) {
        PyObject *m = absorb_target(s, i, msg);
        if (m == NULL)
            return -1;
        PyObject *prev = PyList_GET_ITEM(s->previous, i);
        if (prev == Py_None) {
            prev = PyObject_CallNoArgs(g_deque_type);
            if (prev == NULL) {
                Py_DECREF(m);
                return -1;
            }
            PyList_SetItem(s->previous, i, prev); /* steals */
        }
        PyObject *pair = PyTuple_Pack(2, m, IOBJ(s, sender));
        if (pair == NULL) {
            Py_DECREF(m);
            return -1;
        }
        PyObject *r = PyObject_CallMethodOneArg(prev, s_append, pair);
        Py_DECREF(pair);
        if (r == NULL) {
            Py_DECREF(m);
            return -1;
        }
        Py_DECREF(r);
        if (PyObject_Size(prev) == 1) {
            if (emit(s, i, GETL(s->nxt, i), T_SEARCH, m) < 0) {
                Py_DECREF(m);
                return -1;
            }
        }
        Py_DECREF(m);
        return 1;
    }
    if (st == ST_WAIT || st == ST_PASSIVE)
        return leader_on_search(s, i, sender, msg) < 0 ? -1 : 1;
    /* ST_TERMINATED, not outranked (prechecked) */
    PyObject *m = absorb_target(s, i, msg);
    if (m == NULL)
        return -1;
    PyObject *rel = make_release(s, i, 0, PyTuple_GET_ITEM(m, 1));
    Py_DECREF(m);
    if (rel == NULL)
        return -1;
    int r = emit(s, i, sender, T_RELEASE, rel);
    Py_DECREF(rel);
    return r < 0 ? -1 : 1;
}

static int
exec_release(S *s, long i, long sender, PyObject *msg)
{
    if (PyLong_AsLong(PyTuple_GET_ITEM(msg, 3)) == i)
        return consume_own_release(s, i, msg) < 0 ? -1 : 1;
    /* routing arm: INACTIVE with non-empty previous (prechecked) */
    PyObject *prev = PyList_GET_ITEM(s->previous, i);
    PyObject *item = PyObject_CallMethodNoArgs(prev, s_popleft);
    if (item == NULL)
        return -1;
    long came_from = PyLong_AsLong(PyTuple_GET_ITEM(item, 1));
    Py_DECREF(item); /* prev holds no other refs we need */
    long mphase = PyLong_AsLong(PyTuple_GET_ITEM(msg, 4));
    if (mphase >= GETL(s->phase, i)) {
        long leader = PyLong_AsLong(PyTuple_GET_ITEM(msg, 1));
        if (set_item_obj(s->nxt, i, IOBJ(s, leader)) < 0)
            return -1;
        if (set_item_obj(s->phase, i, PyTuple_GET_ITEM(msg, 4)) < 0)
            return -1;
    }
    if (emit(s, i, came_from, T_RELEASE, msg) < 0)
        return -1;
    if (PyObject_Size(prev) > 0) {
        PyObject *head = PySequence_GetItem(prev, 0);
        if (head == NULL)
            return -1;
        int r = emit(s, i, GETL(s->nxt, i), T_SEARCH,
                     PyTuple_GET_ITEM(head, 0));
        Py_DECREF(head);
        if (r < 0)
            return -1;
    }
    return 1;
}

static int
exec_merge_accept(S *s, long i, long sender, PyObject *msg)
{
    if (set_item_obj(s->nxt, i, IOBJ(s, sender)) < 0)
        return -1;
    PyObject *mo = PyList_GET_ITEM(s->more, i);
    PyObject *dn = PyList_GET_ITEM(s->done, i);
    PyObject *ua = PyList_GET_ITEM(s->unaware, i);
    PyObject *ux = PyList_GET_ITEM(s->unexp, i);
    long extra = (long)(PySet_GET_SIZE(mo) + PySet_GET_SIZE(dn) +
                        PySet_GET_SIZE(ua) + PySet_GET_SIZE(ux));
    PyObject *info = PyTuple_New(6);
    if (info == NULL)
        return -1;
    Py_INCREF(g_tag_objs[T_INFO]);
    PyTuple_SET_ITEM(info, 0, g_tag_objs[T_INFO]);
    PyObject *ph = PyList_GET_ITEM(s->phase, i);
    Py_INCREF(ph);
    PyTuple_SET_ITEM(info, 1, ph);
    PyObject *f;
    if ((f = PyFrozenSet_New(mo)) == NULL)
        goto fail;
    PyTuple_SET_ITEM(info, 2, f);
    if ((f = PyFrozenSet_New(dn)) == NULL)
        goto fail;
    PyTuple_SET_ITEM(info, 3, f);
    if ((f = PyFrozenSet_New(ua)) == NULL)
        goto fail;
    PyTuple_SET_ITEM(info, 4, f);
    if ((f = PyFrozenSet_New(ux)) == NULL)
        goto fail;
    PyTuple_SET_ITEM(info, 5, f);
    if (emitx(s, i, sender, T_INFO, info, extra) < 0)
        goto fail;
    Py_DECREF(info);
    s->status[i] = ST_INACTIVE;
    return 1;
fail:
    Py_DECREF(info);
    return -1;
}

/* Union every member of `src_set` into set `dst_set`. */
static int
set_union_into(PyObject *dst_set, PyObject *src_set)
{
    PyObject *it = PyObject_GetIter(src_set);
    if (it == NULL)
        return -1;
    PyObject *item;
    while ((item = PyIter_Next(it)) != NULL) {
        int r = PySet_Add(dst_set, item);
        Py_DECREF(item);
        if (r < 0) {
            Py_DECREF(it);
            return -1;
        }
    }
    Py_DECREF(it);
    return PyErr_Occurred() ? -1 : 0;
}

static int
merge_with_unaware(S *s, long i, PyObject *msg)
{
    PyObject *ua = PyList_GET_ITEM(s->unaware, i);
    if (set_union_into(ua, PyTuple_GET_ITEM(msg, 2)) < 0 ||
        set_union_into(ua, PyTuple_GET_ITEM(msg, 3)) < 0 ||
        set_union_into(ua, PyTuple_GET_ITEM(msg, 4)) < 0)
        return -1;
    PyObject *mo = PyList_GET_ITEM(s->more, i);
    PyObject *dn = PyList_GET_ITEM(s->done, i);
    PyObject *it = PyObject_GetIter(PyTuple_GET_ITEM(msg, 5));
    if (it == NULL)
        return -1;
    PyObject *item;
    while ((item = PyIter_Next(it)) != NULL) {
        long u = PyLong_AsLong(item);
        int c1 = PySet_Contains(ua, item);
        int c2 = c1 == 0 ? PySet_Contains(mo, item) : 1;
        int c3 = c2 == 0 ? PySet_Contains(dn, item) : 1;
        Py_DECREF(item);
        if (c1 < 0 || c2 < 0 || c3 < 0)
            goto fail;
        if (c1 == 0 && c2 == 0 && c3 == 0 && u != i) {
            if (add_unexplored(s, i, u) < 0)
                goto fail;
        }
    }
    Py_DECREF(it);
    if (PyErr_Occurred())
        return -1;
    long cluster = (long)(PySet_GET_SIZE(mo) + PySet_GET_SIZE(dn) +
                          PySet_GET_SIZE(ua));
    long ph = GETL(s->phase, i);
    long mph = PyLong_AsLong(PyTuple_GET_ITEM(msg, 1));
    if (ph == mph || cluster >= (1L << (ph + 1))) {
        PyObject *np = PyLong_FromLong(ph + 1);
        if (np == NULL)
            return -1;
        if (PyList_SetItem(s->phase, i, np) < 0)
            return -1;
    }
    PyObject *cq = PyTuple_New(3);
    if (cq == NULL)
        return -1;
    Py_INCREF(g_tag_objs[T_CONQUER]);
    PyTuple_SET_ITEM(cq, 0, g_tag_objs[T_CONQUER]);
    PyObject *io = IOBJ(s, i);
    Py_INCREF(io);
    PyTuple_SET_ITEM(cq, 1, io);
    PyObject *phn = PyList_GET_ITEM(s->phase, i);
    Py_INCREF(phn);
    PyTuple_SET_ITEM(cq, 2, phn);
    Py_ssize_t cnt = collect_rank_sorted(s, ua);
    if (cnt < 0) {
        Py_DECREF(cq);
        return -1;
    }
    for (Py_ssize_t j = 0; j < cnt; j++) {
        if (emit(s, i, s->scratch[j].id, T_CONQUER, cq) < 0) {
            Py_DECREF(cq);
            return -1;
        }
    }
    Py_DECREF(cq);
    if (PySet_GET_SIZE(ua) == 0)
        return explore(s, i);
    return 0;
fail:
    Py_DECREF(it);
    return -1;
}

static int
merge_direct(S *s, long i, PyObject *msg)
{
    PyObject *mo = PyList_GET_ITEM(s->more, i);
    PyObject *dn = PyList_GET_ITEM(s->done, i);
    PyObject *it = PyObject_GetIter(PyTuple_GET_ITEM(msg, 2));
    if (it == NULL)
        return -1;
    PyObject *item;
    while ((item = PyIter_Next(it)) != NULL) {
        long w = PyLong_AsLong(item);
        int r = PySet_Discard(dn, item);
        Py_DECREF(item);
        if (r < 0 || add_more(s, i, w) < 0) {
            Py_DECREF(it);
            return -1;
        }
    }
    Py_DECREF(it);
    if (PyErr_Occurred())
        return -1;
    it = PyObject_GetIter(PyTuple_GET_ITEM(msg, 3));
    if (it == NULL)
        return -1;
    while ((item = PyIter_Next(it)) != NULL) {
        int c1 = PySet_Contains(mo, item);
        int c2 = c1 == 0 ? PySet_Contains(dn, item) : 1;
        int r = 0;
        if (c1 == 0 && c2 == 0)
            r = PySet_Add(dn, item);
        Py_DECREF(item);
        if (c1 < 0 || c2 < 0 || r < 0) {
            Py_DECREF(it);
            return -1;
        }
    }
    Py_DECREF(it);
    if (PyErr_Occurred())
        return -1;
    it = PyObject_GetIter(PyTuple_GET_ITEM(msg, 5));
    if (it == NULL)
        return -1;
    while ((item = PyIter_Next(it)) != NULL) {
        long u = PyLong_AsLong(item);
        int c1 = PySet_Contains(mo, item);
        int c2 = c1 == 0 ? PySet_Contains(dn, item) : 1;
        Py_DECREF(item);
        if (c1 < 0 || c2 < 0) {
            Py_DECREF(it);
            return -1;
        }
        if (c1 == 0 && c2 == 0 && u != i) {
            if (add_unexplored(s, i, u) < 0) {
                Py_DECREF(it);
                return -1;
            }
        }
    }
    Py_DECREF(it);
    if (PyErr_Occurred())
        return -1;
    long cluster = (long)(PySet_GET_SIZE(mo) + PySet_GET_SIZE(dn));
    long ph = GETL(s->phase, i);
    long mph = PyLong_AsLong(PyTuple_GET_ITEM(msg, 1));
    if (ph == mph || cluster >= (1L << (ph + 1))) {
        PyObject *np = PyLong_FromLong(ph + 1);
        if (np == NULL)
            return -1;
        if (PyList_SetItem(s->phase, i, np) < 0)
            return -1;
    }
    return explore(s, i);
}

static int
exec_info(S *s, long i, long sender, PyObject *msg)
{
    s->aw_info[i] = 0;
    if (s->variant[i] == V_GENERIC)
        return merge_with_unaware(s, i, msg) < 0 ? -1 : 1;
    return merge_direct(s, i, msg) < 0 ? -1 : 1;
}

static int
exec_conquer(S *s, long i, long sender, PyObject *msg)
{
    if (PyLong_AsLong(PyTuple_GET_ITEM(msg, 2)) >= GETL(s->phase, i)) {
        long leader = PyLong_AsLong(PyTuple_GET_ITEM(msg, 1));
        if (set_item_obj(s->nxt, i, IOBJ(s, leader)) < 0)
            return -1;
        if (set_item_obj(s->phase, i, PyTuple_GET_ITEM(msg, 2)) < 0)
            return -1;
    }
    PyObject *reply =
        PySet_GET_SIZE(PyList_GET_ITEM(s->local, i)) > 0 ? g_wire_md_t
                                                         : g_wire_md_f;
    return emit(s, i, sender, T_MORE_DONE, reply) < 0 ? -1 : 1;
}

static int
exec_more_done(S *s, long i, long sender, PyObject *msg)
{
    if (s->status[i] == ST_TERMINATED)
        return 1;
    /* CONQUEROR, not awaiting info, sender in unaware (prechecked) */
    PyObject *ua = PyList_GET_ITEM(s->unaware, i);
    if (PySet_Discard(ua, IOBJ(s, sender)) < 0)
        return -1;
    int has_more = PyObject_IsTrue(PyTuple_GET_ITEM(msg, 1));
    if (has_more < 0)
        return -1;
    if (has_more) {
        if (add_more(s, i, sender) < 0)
            return -1;
    }
    else if (PySet_Add(PyList_GET_ITEM(s->done, i), IOBJ(s, sender)) < 0)
        return -1;
    if (PySet_GET_SIZE(ua) == 0)
        return explore(s, i) < 0 ? -1 : 1;
    return 1;
}

static int
exec_query(S *s, long i, long sender, PyObject *msg)
{
    long long k = PyLong_AsLongLong(PyTuple_GET_ITEM(msg, 1));
    if (k == -1 && PyErr_Occurred())
        return -1;
    int done_flag;
    PyObject *taken = take_local(s, i, k, &done_flag);
    if (taken == NULL)
        return -1;
    long extra = (long)PySet_GET_SIZE(taken);
    PyObject *reply = PyTuple_New(3);
    if (reply == NULL) {
        Py_DECREF(taken);
        return -1;
    }
    Py_INCREF(g_tag_objs[T_QUERY_REPLY]);
    PyTuple_SET_ITEM(reply, 0, g_tag_objs[T_QUERY_REPLY]);
    PyTuple_SET_ITEM(reply, 1, taken); /* steals */
    PyObject *fo = done_flag ? Py_True : Py_False;
    Py_INCREF(fo);
    PyTuple_SET_ITEM(reply, 2, fo);
    int r = emitx(s, i, sender, T_QUERY_REPLY, reply, extra);
    Py_DECREF(reply);
    return r < 0 ? -1 : 1;
}

static int
exec_query_reply(S *s, long i, long sender, PyObject *msg)
{
    if (set_item_obj(s->aw_query, i, g_neg_one) < 0)
        return -1;
    int done_flag = PyObject_IsTrue(PyTuple_GET_ITEM(msg, 2));
    if (done_flag < 0)
        return -1;
    if (ingest_reply(s, i, sender, PyTuple_GET_ITEM(msg, 1), done_flag) < 0)
        return -1;
    return explore(s, i) < 0 ? -1 : 1;
}

/* Dispatch an executable message; 1 consumed, 0 defer, -1 error. */
static int
exec_msg(S *s, long i, long sender, long tag, PyObject *msg)
{
    switch (tag) {
    case T_SEARCH:
        return exec_search(s, i, sender, msg);
    case T_RELEASE:
        return exec_release(s, i, sender, msg);
    case T_CONQUER:
        return exec_conquer(s, i, sender, msg);
    case T_MORE_DONE:
        return exec_more_done(s, i, sender, msg);
    case T_QUERY:
        return exec_query(s, i, sender, msg);
    case T_QUERY_REPLY:
        return exec_query_reply(s, i, sender, msg);
    case T_MERGE_ACCEPT:
        return exec_merge_accept(s, i, sender, msg);
    case T_MERGE_FAIL:
        s->status[i] = ST_PASSIVE;
        return 1;
    case T_INFO:
        return exec_info(s, i, sender, msg);
    default:
        PyErr_SetString(PyExc_RuntimeError,
                        "arrayloop: exec_msg on unhandleable tag");
        return -1;
    }
}

/* Pure-read precheck: 1 if exec_msg reproduces the Python handler for this
 * message bit-for-bit, 0 if the step must go back to Python (raise paths,
 * probes, unknown tags).  -1 on internal error. */
static int
can_handle(S *s, long dst, long src, PyObject *msg)
{
    long tag = PyLong_AsLong(PyTuple_GET_ITEM(msg, 0));
    int st = s->status[dst];
    switch (tag) {
    case T_QUERY:
        return st == ST_INACTIVE;
    case T_QUERY_REPLY:
        return st == ST_EXPLORE && GETL(s->aw_query, dst) == src;
    case T_SEARCH: {
        if (st != ST_TERMINATED)
            return 1;
        /* terminated leader: handle only the not-outranked reply arm */
        long mphase = PyLong_AsLong(PyTuple_GET_ITEM(msg, 2));
        long ph = GETL(s->phase, dst);
        if (mphase > ph)
            return 0;
        if (mphase == ph) {
            long initiator = PyLong_AsLong(PyTuple_GET_ITEM(msg, 1));
            if (GETL(s->nrank, initiator) > GETL(s->nrank, dst))
                return 0;
        }
        return 1;
    }
    case T_RELEASE: {
        if (PyLong_AsLong(PyTuple_GET_ITEM(msg, 3)) == dst) {
            if (st == ST_WAIT)
                return s->aw_rel[dst] != 0;
            return st == ST_PASSIVE || st == ST_CONQUERED ||
                   st == ST_INACTIVE;
        }
        if (st != ST_INACTIVE)
            return 0;
        PyObject *prev = PyList_GET_ITEM(s->previous, dst);
        if (prev == Py_None)
            return 0;
        Py_ssize_t sz = PyObject_Size(prev);
        if (sz < 0)
            return -1;
        return sz > 0;
    }
    case T_MERGE_ACCEPT:
    case T_MERGE_FAIL:
        return st == ST_CONQUERED;
    case T_INFO:
        return st == ST_CONQUEROR && s->aw_info[dst];
    case T_CONQUER:
        return st == ST_INACTIVE;
    case T_MORE_DONE: {
        if (st == ST_TERMINATED)
            return 1;
        if (st != ST_CONQUEROR || s->aw_info[dst])
            return 0;
        return PySet_Contains(PyList_GET_ITEM(s->unaware, dst),
                              IOBJ(s, src));
    }
    default:
        return 0; /* probes, unknown tags */
    }
}

/* ------------------------------------------------------------------ */
/* Inbox pump (deferral replay); 0 done, 1 resume-in-Python, -1 error. */
/* ------------------------------------------------------------------ */
static int
c_pump(S *s, long i)
{
    PyObject *ib = PyList_GET_ITEM(s->inbox, i);
    if (ib == Py_None)
        return 0;
    for (;;) {
        Py_ssize_t ilen = PyObject_Size(ib);
        if (ilen < 0)
            return -1;
        if (ilen == 0)
            return 0;
        PyObject *item = PySequence_GetItem(ib, 0); /* (sender, msg) */
        if (item == NULL)
            return -1;
        long sender = PyLong_AsLong(PyTuple_GET_ITEM(item, 0));
        PyObject *msg = PyTuple_GET_ITEM(item, 1);
        long tag = PyLong_AsLong(PyTuple_GET_ITEM(msg, 0));
        int ch = can_handle(s, i, sender, msg);
        if (ch < 0) {
            Py_DECREF(item);
            return -1;
        }
        if (!ch) {
            Py_DECREF(item);
            return 1;
        }
        PyObject *popped = PyObject_CallMethodNoArgs(ib, s_popleft);
        if (popped == NULL) {
            Py_DECREF(item);
            return -1;
        }
        Py_DECREF(popped);
        PyObject *df = PyList_GET_ITEM(s->deferred, i);
        int df_active = df != Py_None && PyList_GET_SIZE(df) > 0;
        if (!df_active) {
            int consumed = exec_msg(s, i, sender, tag, msg);
            if (consumed < 0) {
                Py_DECREF(item);
                return -1;
            }
            if (!consumed) {
                if (df == Py_None) {
                    df = PyList_New(0);
                    if (df == NULL) {
                        Py_DECREF(item);
                        return -1;
                    }
                    PyList_SetItem(s->deferred, i, df); /* steals */
                }
                if (PyList_Append(df, item) < 0) {
                    Py_DECREF(item);
                    return -1;
                }
            }
            Py_DECREF(item);
            continue;
        }
        int b_st = s->status[i], b_rel = s->aw_rel[i],
            b_info = s->aw_info[i];
        long b_q = GETL(s->aw_query, i);
        int consumed = exec_msg(s, i, sender, tag, msg);
        if (consumed < 0) {
            Py_DECREF(item);
            return -1;
        }
        if (!consumed) {
            int r = PyList_Append(df, item);
            Py_DECREF(item);
            if (r < 0)
                return -1;
            continue;
        }
        Py_DECREF(item);
        if (PyList_GET_SIZE(df) > 0 &&
            (s->status[i] != b_st || s->aw_rel[i] != b_rel ||
             s->aw_info[i] != b_info || GETL(s->aw_query, i) != b_q)) {
            /* ib.extendleft(reversed(df)) */
            for (Py_ssize_t j = PyList_GET_SIZE(df) - 1; j >= 0; j--) {
                PyObject *r = PyObject_CallMethodOneArg(
                    ib, s_appendleft, PyList_GET_ITEM(df, j));
                if (r == NULL)
                    return -1;
                Py_DECREF(r);
            }
            if (PyList_SetSlice(df, 0, PyList_GET_SIZE(df), NULL) < 0)
                return -1;
        }
    }
}

/* ------------------------------------------------------------------ */
/* Per-call setup / teardown                                           */
/* ------------------------------------------------------------------ */
static void
free_s(S *s)
{
    Py_XDECREF(s->status_o);
    Py_XDECREF(s->awake_o);
    Py_XDECREF(s->aw_rel_o);
    Py_XDECREF(s->aw_info_o);
    Py_XDECREF(s->stale_o);
    Py_XDECREF(s->variant_o);
    Py_XDECREF(s->greedy_o);
    Py_XDECREF(s->ids);
    Py_XDECREF(s->nxt);
    Py_XDECREF(s->phase);
    Py_XDECREF(s->aw_query);
    Py_XDECREF(s->csize);
    Py_XDECREF(s->local);
    Py_XDECREF(s->done);
    Py_XDECREF(s->more);
    Py_XDECREF(s->unaware);
    Py_XDECREF(s->unexp);
    Py_XDECREF(s->mheap);
    Py_XDECREF(s->uheap);
    Py_XDECREF(s->previous);
    Py_XDECREF(s->inbox);
    Py_XDECREF(s->deferred);
    Py_XDECREF(s->rrank);
    Py_XDECREF(s->by_rrank);
    Py_XDECREF(s->nrank);
    Py_XDECREF(s->chanq);
    Py_XDECREF(s->chana);
    Py_XDECREF(s->chanp);
    Py_XDECREF(s->chan_src);
    Py_XDECREF(s->chan_dst);
    Py_XDECREF(s->out);
    Py_XDECREF(s->iobj);
    Py_XDECREF(s->counts_l);
    Py_XDECREF(s->xtra_l);
    Py_XDECREF(s->order);
    Py_XDECREF(s->pool_popleft);
    if (s->scratch != NULL)
        PyMem_Free(s->scratch);
}

static int
fill_s(S *s, PyObject *core)
{
#define FETCH_LIST(field, name)                                           \
    do {                                                                  \
        s->field = PyObject_GetAttrString(core, name);                    \
        if (s->field == NULL)                                             \
            return -1;                                                    \
        if (!PyList_Check(s->field)) {                                    \
            PyErr_SetString(PyExc_TypeError,                              \
                            "arrayloop: core." name " is not a list");    \
            return -1;                                                    \
        }                                                                 \
    } while (0)
#define FETCH_BYTES(field, name)                                          \
    do {                                                                  \
        s->field##_o = PyObject_GetAttrString(core, name);                \
        if (s->field##_o == NULL)                                         \
            return -1;                                                    \
        if (!PyByteArray_Check(s->field##_o)) {                           \
            PyErr_SetString(PyExc_TypeError,                              \
                            "arrayloop: core." name " is not a bytearray"); \
            return -1;                                                    \
        }                                                                 \
        s->field = PyByteArray_AS_STRING(s->field##_o);                   \
    } while (0)

    FETCH_BYTES(status, "status");
    FETCH_BYTES(awake, "awake");
    FETCH_BYTES(aw_rel, "aw_rel");
    FETCH_BYTES(aw_info, "aw_info");
    FETCH_BYTES(stale, "expect_stale");
    FETCH_BYTES(variant, "variant");
    FETCH_BYTES(greedy, "greedy");
    FETCH_LIST(ids, "ids");
    FETCH_LIST(nxt, "nxt");
    FETCH_LIST(phase, "phase");
    FETCH_LIST(aw_query, "aw_query");
    FETCH_LIST(csize, "csize");
    FETCH_LIST(local, "local");
    FETCH_LIST(done, "done");
    FETCH_LIST(more, "more");
    FETCH_LIST(unaware, "unaware");
    FETCH_LIST(unexp, "unexp");
    FETCH_LIST(mheap, "mheap");
    FETCH_LIST(uheap, "uheap");
    FETCH_LIST(previous, "previous");
    FETCH_LIST(inbox, "inbox");
    FETCH_LIST(deferred, "deferred");
    FETCH_LIST(rrank, "rrank");
    FETCH_LIST(by_rrank, "by_rrank");
    FETCH_LIST(nrank, "nrank");
    FETCH_LIST(chanq, "chanq");
    FETCH_LIST(chana, "chana");
    FETCH_LIST(chanp, "chanp");
    FETCH_LIST(chan_src, "chan_src");
    FETCH_LIST(chan_dst, "chan_dst");
    FETCH_LIST(out, "out");
    FETCH_LIST(iobj, "iobj");
    FETCH_LIST(counts_l, "counts");
    FETCH_LIST(xtra_l, "xtra");
    FETCH_LIST(order, "order");
#undef FETCH_LIST
#undef FETCH_BYTES
    s->n = PyList_GET_SIZE(s->iobj);
    if (PyList_GET_SIZE(s->counts_l) != N_TAGS ||
        PyList_GET_SIZE(s->xtra_l) != N_TAGS) {
        PyErr_SetString(PyExc_ValueError, "arrayloop: counts/xtra arity");
        return -1;
    }
    for (int t = 0; t < N_TAGS; t++) {
        s->counts[t] = GETL(s->counts_l, t);
        s->xtra[t] = GETL(s->xtra_l, t);
    }
    return PyErr_Occurred() ? -1 : 0;
}

/* Write steps/counts/xtra back out; preserves any pending exception. */
static void
sync_out(S *s, PyObject *cell)
{
    PyObject *et, *ev, *tb;
    PyErr_Fetch(&et, &ev, &tb);
    PyObject *so = PyLong_FromLong(s->steps);
    if (so != NULL)
        PyList_SetItem(cell, 0, so);
    for (int t = 0; t < N_TAGS; t++) {
        PyObject *c = PyLong_FromLong(s->counts[t]);
        if (c != NULL)
            PyList_SetItem(s->counts_l, t, c);
        PyObject *x = PyLong_FromLong(s->xtra[t]);
        if (x != NULL)
            PyList_SetItem(s->xtra_l, t, x);
    }
    PyErr_Restore(et, ev, tb);
}

/* ------------------------------------------------------------------ */
/* run(core, pool, pool_append, mode, getrandbits, stop, cell)         */
/* ------------------------------------------------------------------ */
static PyObject *
loop_run(PyObject *self, PyObject *args)
{
    PyObject *core, *pool, *pool_append, *getrandbits, *cell;
    int mode;
    long stop;
    if (!PyArg_ParseTuple(args, "OOOiOlO!", &core, &pool, &pool_append,
                          &mode, &getrandbits, &stop, &PyList_Type, &cell))
        return NULL;
    if (!g_configured) {
        PyErr_SetString(PyExc_RuntimeError, "arrayloop: not configured");
        return NULL;
    }
    S s;
    memset(&s, 0, sizeof(S));
    s.core = core;
    s.pool = pool;
    s.pool_append = pool_append;
    s.getrandbits = getrandbits;
    s.mode = mode;
    s.stop = stop;
    if (fill_s(&s, core) < 0) {
        free_s(&s);
        return NULL;
    }
    if (mode == MODE_FIFO) {
        s.pool_popleft = PyObject_GetAttr(pool, s_popleft);
        if (s.pool_popleft == NULL) {
            free_s(&s);
            return NULL;
        }
    }
    else if (!PyList_Check(pool)) {
        PyErr_SetString(PyExc_TypeError, "arrayloop: non-FIFO pool not a list");
        free_s(&s);
        return NULL;
    }
    long steps = GETL(cell, 0);
    if (steps == -1 && PyErr_Occurred()) {
        free_s(&s);
        return NULL;
    }
    int code = RC_DRAINED;
    long aux = -1;

    for (;;) {
        Py_ssize_t psz;
        if (s.mode == MODE_FIFO) {
            psz = PyObject_Size(s.pool);
            if (psz < 0)
                goto error;
        }
        else
            psz = PyList_GET_SIZE(s.pool);
        if (psz == 0) {
            code = RC_DRAINED;
            break;
        }
        long token;
        if (s.mode == MODE_FIFO) {
            PyObject *t = PyObject_CallNoArgs(s.pool_popleft);
            if (t == NULL)
                goto error;
            token = PyLong_AsLong(t);
            Py_DECREF(t);
            if (token == -1 && PyErr_Occurred())
                goto error;
        }
        else if (s.mode == MODE_LIFO) {
            token = GETL(s.pool, psz - 1);
            if (token == -1 && PyErr_Occurred())
                goto error;
            if (PyList_SetSlice(s.pool, psz - 1, psz, NULL) < 0)
                goto error;
        }
        else {
            /* the getrandbits rejection loop the Python loop inlines */
            int k = 64 - __builtin_clzll((unsigned long long)psz);
            long index;
            for (;;) {
                PyObject *r = PyObject_CallOneArg(s.getrandbits, g_k_objs[k]);
                if (r == NULL)
                    goto error;
                index = PyLong_AsLong(r);
                Py_DECREF(r);
                if (index == -1 && PyErr_Occurred())
                    goto error;
                if (index < psz)
                    break;
            }
            token = GETL(s.pool, index);
            if (token == -1 && PyErr_Occurred())
                goto error;
            if (index != psz - 1) {
                PyObject *last = PyList_GET_ITEM(s.pool, psz - 1);
                Py_INCREF(last);
                if (PyList_SetItem(s.pool, index, last) < 0)
                    goto error;
            }
            if (PyList_SetSlice(s.pool, psz - 1, psz, NULL) < 0)
                goto error;
        }

        if (token < 0) {
            /* wake token */
            long node = -1 - token;
            steps += 1;
            s.steps = steps;
            if (!s.awake[node]) {
                s.awake[node] = 1;
                if (explore(&s, node) < 0)
                    goto error;
                PyObject *ib = PyList_GET_ITEM(s.inbox, node);
                if (ib != Py_None) {
                    Py_ssize_t isz = PyObject_Size(ib);
                    if (isz < 0)
                        goto error;
                    if (isz > 0) {
                        int pr = c_pump(&s, node);
                        if (pr < 0)
                            goto error;
                        if (pr == 1) {
                            code = RC_PUMP;
                            aux = node;
                            goto done;
                        }
                    }
                }
            }
        }
        else {
            /* deliver token: peek, wake, precheck, then commit */
            PyObject *chq = PyList_GET_ITEM(s.chanq, token);
            PyObject *msg = PySequence_GetItem(chq, 0);
            if (msg == NULL)
                goto error;
            long dst = GETL(s.chan_dst, token);
            long src = GETL(s.chan_src, token);
            steps += 1;
            s.steps = steps;
            if (!s.awake[dst]) {
                s.awake[dst] = 1;
                if (explore(&s, dst) < 0) {
                    Py_DECREF(msg);
                    goto error;
                }
            }
            PyObject *dfv = PyList_GET_ITEM(s.deferred, dst);
            PyObject *ibv = PyList_GET_ITEM(s.inbox, dst);
            int busy = dfv != Py_None && PyList_GET_SIZE(dfv) > 0;
            if (!busy && ibv != Py_None) {
                Py_ssize_t isz = PyObject_Size(ibv);
                if (isz < 0) {
                    Py_DECREF(msg);
                    goto error;
                }
                busy = isz > 0;
            }
            if (busy) {
                PyObject *popped =
                    PyObject_CallNoArgs(PyList_GET_ITEM(s.chanp, token));
                if (popped == NULL) {
                    Py_DECREF(msg);
                    goto error;
                }
                Py_DECREF(msg);
                PyObject *ib = ibv;
                if (ib == Py_None) {
                    ib = PyObject_CallNoArgs(g_deque_type);
                    if (ib == NULL) {
                        Py_DECREF(popped);
                        goto error;
                    }
                    PyList_SetItem(s.inbox, dst, ib); /* steals */
                }
                PyObject *pair = PyTuple_Pack(2, IOBJ(&s, src), popped);
                Py_DECREF(popped);
                if (pair == NULL)
                    goto error;
                PyObject *r = PyObject_CallMethodOneArg(ib, s_append, pair);
                Py_DECREF(pair);
                if (r == NULL)
                    goto error;
                Py_DECREF(r);
                int pr = c_pump(&s, dst);
                if (pr < 0)
                    goto error;
                if (pr == 1) {
                    code = RC_PUMP;
                    aux = dst;
                    goto done;
                }
            }
            else {
                int ch = can_handle(&s, dst, src, msg);
                if (ch < 0) {
                    Py_DECREF(msg);
                    goto error;
                }
                if (!ch) {
                    Py_DECREF(msg);
                    steps -= 1;
                    s.steps = steps;
                    code = RC_DEOPT;
                    aux = token;
                    goto done;
                }
                PyObject *popped =
                    PyObject_CallNoArgs(PyList_GET_ITEM(s.chanp, token));
                if (popped == NULL) {
                    Py_DECREF(msg);
                    goto error;
                }
                Py_DECREF(msg);
                long tag = PyLong_AsLong(PyTuple_GET_ITEM(popped, 0));
                int consumed = exec_msg(&s, dst, src, tag, popped);
                if (consumed < 0) {
                    Py_DECREF(popped);
                    goto error;
                }
                if (!consumed) {
                    PyObject *df = PyList_GET_ITEM(s.deferred, dst);
                    if (df == Py_None) {
                        df = PyList_New(0);
                        if (df == NULL) {
                            Py_DECREF(popped);
                            goto error;
                        }
                        PyList_SetItem(s.deferred, dst, df); /* steals */
                    }
                    PyObject *pair = PyTuple_Pack(2, IOBJ(&s, src), popped);
                    if (pair == NULL) {
                        Py_DECREF(popped);
                        goto error;
                    }
                    int r = PyList_Append(df, pair);
                    Py_DECREF(pair);
                    if (r < 0) {
                        Py_DECREF(popped);
                        goto error;
                    }
                }
                Py_DECREF(popped);
            }
        }
        if (steps >= s.stop) {
            code = RC_LIMIT;
            break;
        }
    }

done:
    s.steps = steps;
    sync_out(&s, cell);
    free_s(&s);
    if (PyErr_Occurred())
        return NULL;
    return Py_BuildValue("il", code, aux);

error:
    s.steps = steps;
    sync_out(&s, cell);
    free_s(&s);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* configure + module                                                  */
/* ------------------------------------------------------------------ */
static PyObject *
loop_configure(PyObject *self, PyObject *args)
{
    PyObject *cfg;
    if (!PyArg_ParseTuple(args, "O!", &PyDict_Type, &cfg))
        return NULL;
#define CFG(var, key)                                                     \
    do {                                                                  \
        PyObject *v = PyDict_GetItemString(cfg, key);                     \
        if (v == NULL) {                                                  \
            PyErr_Format(PyExc_KeyError,                                  \
                         "arrayloop configure: missing %s", key);         \
            return NULL;                                                  \
        }                                                                 \
        Py_INCREF(v);                                                     \
        Py_XSETREF(var, v);                                               \
    } while (0)
    CFG(g_deque_type, "deque");
    CFG(g_sim_error, "simulation_error");
    CFG(g_msg_types, "msg_types");
    CFG(g_wire_ma, "wire_merge_accept");
    CFG(g_wire_mf, "wire_merge_fail");
    CFG(g_wire_md_t, "wire_md_true");
    CFG(g_wire_md_f, "wire_md_false");
    CFG(g_greedy_k, "greedy_k");
#undef CFG
    if (!PyTuple_Check(g_msg_types) ||
        PyTuple_GET_SIZE(g_msg_types) != N_TAGS) {
        PyErr_SetString(PyExc_ValueError,
                        "arrayloop configure: msg_types arity mismatch");
        return NULL;
    }
    g_configured = 1;
    Py_RETURN_NONE;
}

static PyMethodDef loop_methods[] = {
    {"configure", loop_configure, METH_VARARGS,
     "Install the interpreter-side singletons the loop emits."},
    {"run", loop_run, METH_VARARGS,
     "Run steps of the array core; see the file header for the protocol."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef loop_module = {
    PyModuleDef_HEAD_INIT, "_arrayloop",
    "C delivery loop for repro.core.arraystate", -1, loop_methods,
};

PyMODINIT_FUNC
PyInit__arrayloop(void)
{
    for (int t = 0; t < N_TAGS; t++) {
        g_tag_objs[t] = PyLong_FromLong(t);
        if (g_tag_objs[t] == NULL)
            return NULL;
    }
    for (int k = 0; k < 65; k++) {
        g_k_objs[k] = PyLong_FromLong(k);
        if (g_k_objs[k] == NULL)
            return NULL;
    }
    g_zero = PyLong_FromLong(0);
    g_neg_one = PyLong_FromLong(-1);
    s_append = PyUnicode_InternFromString("append");
    s_popleft = PyUnicode_InternFromString("popleft");
    s_appendleft = PyUnicode_InternFromString("appendleft");
    if (g_zero == NULL || g_neg_one == NULL || s_append == NULL ||
        s_popleft == NULL || s_appendleft == NULL)
        return NULL;
    return PyModule_Create(&loop_module);
}
