"""The paper's algorithms: the Generic (Oblivious) algorithm and its
Bounded and Ad-hoc variants (Section 4)."""

from repro.core.adhoc import AdhocNetwork, run_adhoc
from repro.core.bounded import run_bounded
from repro.core.dynamic import ChurnOutcome, ChurnScenario, EventCost, random_churn
from repro.core.generic import run_generic
from repro.core.messages import (
    ABORT,
    MERGE,
    Conquer,
    Info,
    MergeAccept,
    MergeFail,
    MoreDone,
    Probe,
    ProbeReply,
    Query,
    QueryReply,
    Release,
    Search,
)
from repro.core.node import LEADER_STATES, VARIANTS, DiscoveryNode, ProtocolError
from repro.core.result import DiscoveryResult, collect_result, resolve_leader
from repro.core.runner import build_simulation, default_step_budget, id_bits_for

__all__ = [
    "run_generic",
    "run_bounded",
    "run_adhoc",
    "AdhocNetwork",
    "ChurnScenario",
    "ChurnOutcome",
    "EventCost",
    "random_churn",
    "DiscoveryNode",
    "DiscoveryResult",
    "ProtocolError",
    "LEADER_STATES",
    "VARIANTS",
    "collect_result",
    "resolve_leader",
    "build_simulation",
    "default_step_budget",
    "id_bits_for",
    "Query",
    "QueryReply",
    "Search",
    "Release",
    "MergeAccept",
    "MergeFail",
    "Info",
    "Conquer",
    "MoreDone",
    "Probe",
    "ProbeReply",
    "MERGE",
    "ABORT",
]
