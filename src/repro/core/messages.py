"""Protocol messages of the Generic algorithm and its variants.

One class per message type of Section 4:

==============  =====================================================
``query``        leader -> cluster member: "send me up to k of your
                 unreported ids" (Figure 3)
``query-reply``  the ids plus the *doneFlag* saying the member's
                 ``local`` set is now empty (Figures 3, 5)
``search``       leader -> unexplored node, then routed along ``next``
                 pointers to the current leader (Figures 3, 4, 5)
``release``      the reply to a search, routed back along the
                 ``previous`` queues, performing path compression;
                 carries the verdict ``merge`` or ``abort`` (Figures 4-6)
``merge-accept`` conqueror -> conquered: proceed with the merge
``merge-fail``   the would-be conqueror is no longer a waiting leader
``info``         conquered -> conqueror: all gathered state (Figure 6)
``conquer``      conqueror -> unaware member: "I am your leader now"
                 (Figure 5; the Bounded variant's termination broadcast)
``more-done``    unaware member -> conqueror: am I exhausted? (Figure 5)
``probe``        Ad-hoc only (Section 4.5.2): request the current id
                 snapshot from the leader, routed like a search
``probe-reply``  Ad-hoc only: the snapshot, path-compressing like a
                 release
==============  =====================================================

Bit accounting follows the model: each id costs ``id_bits = ceil(log2 n)``
bits, integers (phases, counters) likewise, flags cost one bit, and every
message pays a constant header.  These are the quantities bounded by
Lemmas 5.9-5.10 and Theorem 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable

from repro.sim.trace import HEADER_BITS, bits_for_ids  # noqa: F401 (re-export)

NodeId = Hashable

__all__ = [
    "Query",
    "QueryReply",
    "Search",
    "Release",
    "MergeAccept",
    "MergeFail",
    "Info",
    "Conquer",
    "MoreDone",
    "Probe",
    "ProbeReply",
    "MERGE",
    "ABORT",
    "MSG_TYPES",
    "WIRE_TYPES",
    "fixed_bit_bases",
]

#: Release verdicts (the ``answer`` field of Figures 4-6).
MERGE = "merge"
ABORT = "abort"


@dataclass(frozen=True, slots=True)
class Query:
    """Leader asks a cluster member for up to ``k`` unreported ids.

    ``k = |more| + |done| + 1`` at the sending leader -- just enough ids to
    guarantee progress (either a new id appears or the member is exhausted),
    which is the balance behind the algorithm's bit complexity (Section 4.1).
    """

    k: int
    msg_type = "query"

    def bit_size(self, id_bits: int) -> int:
        # bits_for_ids(0, id_bits, extra_ints=1), inlined (hot path).
        return HEADER_BITS + (id_bits if id_bits > 1 else 1)


@dataclass(frozen=True, slots=True)
class QueryReply:
    """Up to ``k`` ids from the member's ``local`` set.

    ``done_flag`` is the pseudocode's *doneFlag*: ``local`` is now empty, so
    the leader may move the member from ``more`` to ``done``.
    """

    ids: FrozenSet[NodeId]
    done_flag: bool
    msg_type = "query-reply"

    def bit_size(self, id_bits: int) -> int:
        # bits_for_ids(len(ids), id_bits) + 1 flag bit, inlined.
        return HEADER_BITS + len(self.ids) * (id_bits if id_bits > 1 else 1) + 1


@dataclass(frozen=True, slots=True)
class Search:
    """``<v.id, v.phase, u.id, new>`` of Figure 3.

    ``initiator`` is the searching leader ``v``; ``target`` is the
    unexplored node ``u`` whose current leader is sought; ``new`` is set en
    route when the target learns the initiator's id for the first time
    (Section 4.2's back-edge bookkeeping).  ``phase`` 0 is reserved for the
    Section 6 new-link notification searches, which must lose every
    ``(phase, id)`` comparison by construction.
    """

    initiator: NodeId
    phase: int
    target: NodeId
    new: bool
    msg_type = "search"

    def bit_size(self, id_bits: int) -> int:
        # bits_for_ids(2, id_bits, extra_ints=1) + 1 flag bit, inlined.
        return HEADER_BITS + 3 * (id_bits if id_bits > 1 else 1) + 1


@dataclass(frozen=True, slots=True)
class Release:
    """``<l, answer, v>`` of Figures 4-6: the reply to ``initiator``'s
    search, issued by leader ``leader``, with verdict ``answer``.

    Routed back along the ``previous`` queues; every intermediate node sets
    ``next := leader`` (path compression, the Union-Find correspondence of
    Lemma 5.6).

    ``phase`` is the issuing leader's phase, used to guard the compression:
    a stale release routed through a node *after* a newer leader's conquer
    has set its pointer must not overwrite it, or property 3 breaks (the
    node would point at a dead leader).  Figure 5 compresses
    unconditionally; carrying the phase is the minimal completion that
    makes the conquer-side phase comparison ("from a phase higher than its
    current leader", Section 4.4) arbitrate both message kinds
    (reproduction finding F3).
    """

    leader: NodeId
    answer: str
    initiator: NodeId
    phase: int
    msg_type = "release"

    def __post_init__(self) -> None:
        if self.answer not in (MERGE, ABORT):
            raise ValueError(f"release answer must be merge/abort, got {self.answer!r}")

    def bit_size(self, id_bits: int) -> int:
        # bits_for_ids(2, id_bits, extra_ints=1) + 1 flag bit, inlined.
        return HEADER_BITS + 3 * (id_bits if id_bits > 1 else 1) + 1


@dataclass(frozen=True, slots=True)
class MergeAccept:
    """Conqueror (wait-state leader) accepts the merge request."""

    msg_type = "merge-accept"

    def bit_size(self, id_bits: int) -> int:
        return HEADER_BITS  # bits_for_ids(0, id_bits): header only


@dataclass(frozen=True, slots=True)
class MergeFail:
    """The search initiator is no longer a waiting leader; merge refused."""

    msg_type = "merge-fail"

    def bit_size(self, id_bits: int) -> int:
        return HEADER_BITS  # bits_for_ids(0, id_bits): header only


@dataclass(frozen=True, slots=True)
class Info:
    """``<phase, more, done, unaware, unexplored>`` of Figure 6.

    The conquered leader's entire gathered state.  The variants (Section
    4.5) never maintain ``unaware``, so it is empty there.  Info size drives
    Lemma 5.10's ``4 n log^2 n`` bit bound.
    """

    phase: int
    more: FrozenSet[NodeId]
    done: FrozenSet[NodeId]
    unaware: FrozenSet[NodeId]
    unexplored: FrozenSet[NodeId]
    msg_type = "info"

    def bit_size(self, id_bits: int) -> int:
        n_ids = len(self.more) + len(self.done) + len(self.unaware) + len(self.unexplored)
        # bits_for_ids(n_ids, id_bits, extra_ints=1), inlined.
        return HEADER_BITS + (n_ids + 1) * (id_bits if id_bits > 1 else 1)


@dataclass(frozen=True, slots=True)
class Conquer:
    """``<v.id, v.phase>``: announce the new leader to an unaware node."""

    leader: NodeId
    phase: int
    msg_type = "conquer"

    def bit_size(self, id_bits: int) -> int:
        # bits_for_ids(1, id_bits, extra_ints=1), inlined.
        return HEADER_BITS + 2 * (id_bits if id_bits > 1 else 1)


@dataclass(frozen=True, slots=True)
class MoreDone:
    """The conquer acknowledgement: one bit saying whether the sender's
    ``local`` set still holds unreported ids (Figure 5's more/done reply)."""

    has_more: bool
    msg_type = "more-done"

    def bit_size(self, id_bits: int) -> int:
        return HEADER_BITS + 1  # bits_for_ids(0, id_bits) + 1 flag bit


@dataclass(frozen=True, slots=True)
class Probe:
    """Ad-hoc snapshot request (Section 4.5.2), routed like a search."""

    initiator: NodeId
    msg_type = "probe"

    def bit_size(self, id_bits: int) -> int:
        # bits_for_ids(1, id_bits), inlined.
        return HEADER_BITS + (id_bits if id_bits > 1 else 1)


@dataclass(frozen=True, slots=True)
class ProbeReply:
    """Ad-hoc snapshot reply: the leader id and every id it has gathered.

    Path-compresses ``next`` pointers on the way back, like a release.
    """

    leader: NodeId
    ids: FrozenSet[NodeId]
    initiator: NodeId
    msg_type = "probe-reply"

    def bit_size(self, id_bits: int) -> int:
        # bits_for_ids(2 + len(ids), id_bits), inlined.
        return HEADER_BITS + (2 + len(self.ids)) * (id_bits if id_bits > 1 else 1)


# ----------------------------------------------------------------------
# Wire-tag registry for the array-backed core (repro.core.arraystate)
# ----------------------------------------------------------------------
# The array core replaces per-send frozen-dataclass allocation with plain
# tuples ``(tag, field, field, ...)`` whose first element is a dense int
# tag.  The registry below is the single source of truth tying tags,
# classes and msg_type strings together; the tag order is frozen (stats
# folding and the fixed-bit table index by it).

#: Dataclass per wire tag, in tag order.
WIRE_TYPES = (
    Query,
    QueryReply,
    Search,
    Release,
    MergeAccept,
    MergeFail,
    Info,
    Conquer,
    MoreDone,
    Probe,
    ProbeReply,
)

#: ``msg_type`` string per wire tag, in tag order.
MSG_TYPES = tuple(cls.msg_type for cls in WIRE_TYPES)

(
    T_QUERY,
    T_QUERY_REPLY,
    T_SEARCH,
    T_RELEASE,
    T_MERGE_ACCEPT,
    T_MERGE_FAIL,
    T_INFO,
    T_CONQUER,
    T_MORE_DONE,
    T_PROBE,
    T_PROBE_REPLY,
) = range(len(WIRE_TYPES))


def fixed_bit_bases(id_bits: int) -> "tuple[int, ...]":
    """Per-tag fixed bit cost, mirroring each class's ``bit_size``.

    The variable-size types (query-reply, info, probe-reply) additionally
    pay ``len(ids) * max(1, id_bits)`` per carried id; everything else is
    covered entirely by its base.  Kept next to the registry so a new
    message type cannot add a ``bit_size`` without the array core noticing
    (the equivalence suite compares folded bit totals exactly).
    """
    b = id_bits if id_bits > 1 else 1
    h = HEADER_BITS
    return (
        h + b,  # query: k counter
        h + 1,  # query-reply: done_flag (+ len(ids) * b variable)
        h + 3 * b + 1,  # search: initiator, phase, target, new flag
        h + 3 * b + 1,  # release: leader, initiator, phase, answer flag
        h,  # merge-accept
        h,  # merge-fail
        h + b,  # info: phase (+ total set sizes * b variable)
        h + 2 * b,  # conquer: leader, phase
        h + 1,  # more-done: has_more flag
        h + b,  # probe: initiator
        h + 2 * b,  # probe-reply: leader, initiator (+ len(ids) * b variable)
    )


#: Preallocated flyweight wire tuples for the payload-free messages -- the
#: array-core analogue of the shared ``_MERGE_ACCEPT``/``_MERGE_FAIL``
#: dataclass singletons in :mod:`repro.core.node`.
WIRE_MERGE_ACCEPT = (T_MERGE_ACCEPT,)
WIRE_MERGE_FAIL = (T_MERGE_FAIL,)
WIRE_MORE_DONE_TRUE = (T_MORE_DONE, True)
WIRE_MORE_DONE_FALSE = (T_MORE_DONE, False)
