"""The Generic Algorithm's node state machine (Section 4, Figures 2-6).

One :class:`DiscoveryNode` instance per system node, driven by the
asynchronous simulator.  The paper's pseudocode is written as blocking
loops (``wait for message`` / ``goto WAIT``); an event-driven transcription
needs three interpretation rules, each documented where it bites:

1. **Deferral.**  A pseudocode loop that pattern-matches only some message
   types leaves the rest in the process's queue.  We replicate that with a
   deferred list: a message the current state does not handle is parked and
   replayed, in arrival order, whenever the (sub)state changes.

2. **Idle wait resumes exploration.**  Section 4.1: "If both v.unexplored
   and v.more are empty, the leader v waits until v.more becomes non-empty".
   A leader waiting *without* an outstanding search therefore re-enters
   EXPLORE as soon as an arriving search replenishes its sets; without this
   rule the single-leader-knows-everything property (Lemma 5.4) fails on
   e.g. a two-leader mutual-abort schedule.

3. **Self-interactions are local.**  The leader's own id lives in its
   ``more`` set; querying it is "simulated internally" (Section 4.1) and
   costs no messages, matching the accounting of Lemmas 5.5-5.10.

The class implements all three protocol variants (Section 4.5):

* ``variant="generic"`` -- the Oblivious algorithm with the ``unaware`` set
  and per-phase conquer broadcasts;
* ``variant="bounded"`` -- no ``unaware``; the leader knows its component
  size and terminates with one final conquer broadcast (Theorem 4);
* ``variant="adhoc"`` -- no conquer broadcasts at all; ``next`` pointers
  form the path to the leader (properties 3a/3b) and ``probe`` messages
  fetch id snapshots with path compression (Section 4.5.2).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.core.messages import (
    ABORT,
    MERGE,
    Conquer,
    Info,
    MergeAccept,
    MergeFail,
    MoreDone,
    Probe,
    ProbeReply,
    Query,
    QueryReply,
    Release,
    Search,
)
from repro.sim.network import SimNode, SimulationError

NodeId = Hashable

__all__ = [
    "DiscoveryNode",
    "ProtocolError",
    "VARIANTS",
    "LEADER_STATES",
    "STATUS_NAMES",
    "STATUS_CODES",
    "behavior_is_pristine",
]

VARIANTS = ("generic", "bounded", "adhoc")

#: Status strings in dense-code order.  The array-backed core
#: (:mod:`repro.core.arraystate`) stores node status as a byte indexing
#: this tuple; :data:`STATUS_CODES` is the inverse used when interning a
#: live object-path node.  Order is frozen -- the codes are part of the
#: array core's materialization contract.
STATUS_NAMES = (
    "asleep",
    "explore",
    "wait",
    "conquered",
    "conqueror",
    "passive",
    "inactive",
    "terminated",
)
STATUS_CODES = {name: code for code, name in enumerate(STATUS_NAMES)}

#: Paper definition: "we call a node leader if its state is not conquered
#: or inactive or passive".  ``terminated`` is the Bounded variant's final
#: leader state (Theorem 4).
LEADER_STATES = frozenset({"explore", "wait", "conqueror", "terminated"})

#: Phase value reserved for Section 6 new-link notification searches; real
#: leaders start at phase 1, so a phase-0 search loses every comparison and
#: is always answered with an abort.
NOTIFY_PHASE = 0


class ProtocolError(SimulationError):
    """A message arrived in a state the protocol proves impossible."""


#: Field-less handshake messages are value objects; one shared frozen
#: instance per type avoids an allocation on every merge handshake.
_MERGE_ACCEPT = MergeAccept()
_MERGE_FAIL = MergeFail()


class DiscoveryNode(SimNode):
    """One participant of the (Generic | Bounded | Ad-hoc) algorithm.

    Parameters
    ----------
    node_id:
        The node's unique id.  Ids within one system must be mutually
        orderable (they break ties in the ``(phase, id)`` conquest rule).
    initial_local:
        The ids this node knows at start -- its out-neighbours in ``E0``.
    variant:
        ``"generic"``, ``"bounded"`` or ``"adhoc"``.
    component_size:
        Required for ``"bounded"``: the size of this node's weakly
        connected component (the Bounded model's prior knowledge).
    greedy_queries:
        Ablation switch (off by default): ask queried members for *all*
        their ids instead of the balanced ``|more| + |done| + 1`` of
        Section 4.1.  Correct but forfeits the bit-complexity bound --
        the trivial solution the paper contrasts against
        (``O(|E0| log^2 n)`` bits).
    """

    def __init__(
        self,
        node_id: NodeId,
        initial_local: FrozenSet[NodeId],
        *,
        variant: str = "generic",
        component_size: Optional[int] = None,
        greedy_queries: bool = False,
    ) -> None:
        super().__init__(node_id)
        if variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
        if variant == "bounded" and (component_size is None or component_size < 1):
            raise ValueError("bounded variant requires component_size >= 1")
        self.variant = variant
        self.component_size = component_size
        self.greedy_queries = greedy_queries

        # -- Figure 2 data structure --------------------------------------
        self.status = "asleep"
        self.local: Set[NodeId] = set(initial_local) - {node_id}
        self.next: NodeId = node_id
        self.phase = 1
        self.done: Set[NodeId] = set()
        self.more: Set[NodeId] = set()
        self.unaware: Set[NodeId] = set()
        self.unexplored: Set[NodeId] = set()
        self.previous: Deque[Tuple[Search, NodeId]] = deque()

        # -- event-driven bookkeeping -------------------------------------
        self._inbox: Deque[Tuple[NodeId, Any]] = deque()
        self._deferred: List[Tuple[NodeId, Any]] = []
        self._processing = False
        self._more_heap: List[Tuple[str, NodeId]] = []
        self._unexplored_heap: List[Tuple[str, NodeId]] = []
        #: substates of the paper's WAIT: with an outstanding search
        #: (awaiting its release) or idle (Section 4.1's wait-for-work).
        self._awaiting_release = False
        #: id we sent a query to while in EXPLORE (None otherwise).
        self._awaiting_query_from: Optional[NodeId] = None
        #: conqueror substate: Info not yet received.
        self._awaiting_info = False
        #: set when this node is conquered while one of its own searches is
        #: still outstanding; the eventual stale release must then feed the
        #: releasing leader's id back into the pipeline (finding F2), and
        #: only that one -- notification-search releases must not, or the
        #: node would re-report its own leader forever.
        self._expect_stale_release = False

        # -- Ad-hoc probe machinery (Section 4.5.2) ------------------------
        self.probe_previous: Deque[Tuple[Probe, NodeId]] = deque()
        self.probe_results: List[Tuple[NodeId, FrozenSet[NodeId]]] = []
        self._probe_outstanding = False
        #: set while a crash-recovery rejoin probe is in flight; its reply
        #: refreshes ``next`` (see :meth:`rejoin`).
        self._rejoining = False
        #: set once this node has been restarted from a checkpoint.  A
        #: restarted node -- and only a restarted node -- tolerates replies
        #: to conversations its dead incarnation started: the reliable
        #: transport re-queues a crashed peer's outstanding payloads to the
        #: new incarnation (to repair half-open handshakes), so messages
        #: that are *impossible* in the fault-free model legitimately reach
        #: fresh state here.  Handlers downgrade those specific
        #: ProtocolErrors to drops or deferrals; every other node keeps the
        #: strict fail-loud checks.
        self._restarted = False

        self._add_more(node_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_leader(self) -> bool:
        return self.status in LEADER_STATES

    @property
    def knowledge(self) -> FrozenSet[NodeId]:
        """All ids this node has gathered as a leader (its cluster)."""
        return frozenset(self.more | self.done | self.unaware | {self.node_id})

    def __repr__(self) -> str:
        return (
            f"DiscoveryNode({self.node_id!r}, status={self.status}, "
            f"phase={self.phase}, |more|={len(self.more)}, "
            f"|done|={len(self.done)}, |unaware|={len(self.unaware)})"
        )

    # ------------------------------------------------------------------
    # Deterministic choice helpers (heaps keyed by repr: any fixed total
    # order works -- the pseudocode says "choose any"; we need determinism
    # for reproducible traces).
    # ------------------------------------------------------------------
    def _add_more(self, w: NodeId) -> None:
        if w not in self.more:
            self.more.add(w)
            heapq.heappush(self._more_heap, (repr(w), w))

    def _add_unexplored(self, u: NodeId) -> None:
        if u not in self.unexplored:
            self.unexplored.add(u)
            heapq.heappush(self._unexplored_heap, (repr(u), u))

    def _peek_more(self) -> Optional[NodeId]:
        while self._more_heap:
            _key, w = self._more_heap[0]
            if w in self.more:
                return w
            heapq.heappop(self._more_heap)
        return None

    def _pop_unexplored(self) -> Optional[NodeId]:
        """Pop the next genuinely-unexplored node.

        Skips entries that joined the cluster after being recorded (the
        merge rule only subtracts the conquered leader's members, so stale
        ids can linger -- harmless as long as we skip them here; searching a
        node of one's own tree would route the search back to its initiator).
        """
        while self._unexplored_heap:
            _key, u = heapq.heappop(self._unexplored_heap)
            if u not in self.unexplored:
                continue
            self.unexplored.discard(u)
            if (
                u == self.node_id
                or u in self.more
                or u in self.done
                or u in self.unaware
            ):
                continue
            return u
        return None

    def _move_done_to_more(self, w: NodeId) -> None:
        self.done.discard(w)
        self._add_more(w)

    def _move_more_to_done(self, w: NodeId) -> None:
        self.more.discard(w)
        self.done.add(w)

    # ------------------------------------------------------------------
    # Simulator entry points
    # ------------------------------------------------------------------
    def on_wake(self) -> None:
        self.status = "explore"
        self._explore()
        self._pump()

    def on_message(self, sender: NodeId, message: Any) -> None:
        # Common case inlined: nothing queued, nothing deferred -- dispatch
        # without the inbox round-trip.  Observationally identical to the
        # general path because a successful dispatch never appends to
        # ``_deferred`` and the replay rule only fires when ``_deferred``
        # was non-empty *before* the dispatch.
        if self._processing or self._inbox or self._deferred:
            self._inbox.append((sender, message))
            self._pump()
            return
        self._processing = True
        try:
            # _dispatch inlined (one call per delivered message saved).
            handler = self._HANDLERS.get(message.msg_type)
            if handler is None:
                raise ProtocolError(
                    f"{self.node_id!r}: unknown message type {message.msg_type!r}"
                )
            if not handler(self, sender, message):
                self._deferred.append((sender, message))
        finally:
            self._processing = False
        if self._inbox:  # a handler self-enqueued (none do today)
            self._pump()

    def _pump(self) -> None:
        """Process the inbox; replay deferred messages on substate change."""
        if self._processing:
            return
        self._processing = True
        inbox = self._inbox
        deferred = self._deferred
        try:
            while inbox:
                sender, message = inbox.popleft()
                if not deferred:
                    # The replay rule below compares substates only when a
                    # deferred message could be replayed; with none parked
                    # the comparison is dead weight, so skip computing it.
                    if not self._dispatch(sender, message):
                        deferred.append((sender, message))
                    continue
                before = self._substate_token()
                if not self._dispatch(sender, message):
                    deferred.append((sender, message))
                    continue
                if deferred and self._substate_token() != before:
                    inbox.extendleft(reversed(deferred))
                    deferred.clear()
        finally:
            self._processing = False

    def _substate_token(self) -> Tuple:
        return (
            self.status,
            self._awaiting_release,
            self._awaiting_query_from,
            self._awaiting_info,
        )

    def _replay_deferred(self) -> None:
        """Move deferred messages back into the inbox (state just changed
        outside the pump loop, e.g. via a dynamic-addition entry point)."""
        if self._deferred:
            self._inbox.extendleft(reversed(self._deferred))
            self._deferred.clear()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    #: msg_type -> unbound handler; filled in after the class body (the
    #: methods do not exist yet at this point in the class definition).
    #: One dict hit replaces the former chain of string comparisons --
    #: measurable, because dispatch runs once per delivered message.
    _HANDLERS: Dict[str, Any] = {}

    def _dispatch(self, sender: NodeId, message: Any) -> bool:
        """Handle one message; return False to defer it."""
        handler = self._HANDLERS.get(message.msg_type)
        if handler is None:
            raise ProtocolError(
                f"{self.node_id!r}: unknown message type {message.msg_type!r}"
            )
        return handler(self, sender, message)

    # ------------------------------------------------------------------
    # EXPLORE (Figure 3)
    # ------------------------------------------------------------------
    def _explore(self) -> None:
        """The Figure 3 loop: find an unexplored node or work the queue.

        Leaves the node in exactly one of: WAIT with an outstanding search,
        EXPLORE awaiting a query reply, idle WAIT, or (Bounded) terminated.
        """
        self.status = "explore"
        while True:
            if self.variant == "bounded" and len(self.done) == self.component_size:
                # Theorem 4: the component size is known, so a full ``done``
                # set is a sound termination signal.  Checked inside the
                # loop because internal self-queries can complete it without
                # any message arriving (e.g. an isolated node).
                self._terminate_bounded()
                return
            target = self._pop_unexplored()
            if target is not None:
                self.status = "wait"
                self._awaiting_release = True
                self.send(target, Search(self.node_id, self.phase, target, False))
                return
            candidate = self._peek_more()
            if candidate is None:
                # Section 4.1: wait until ``more`` becomes non-empty.
                self.status = "wait"
                self._awaiting_release = False
                return
            if self.greedy_queries:
                # Ablation: the trivial ask-for-everything strategy.
                k = 1 << 62
            else:
                k = len(self.more) + len(self.done) + 1
            if candidate == self.node_id:
                # Internal simulation of the self-query (Section 4.1).
                reply = self._answer_query_locally(k)
                self._ingest_query_reply(candidate, reply)
                continue
            self._awaiting_query_from = candidate
            self.send(candidate, Query(k))
            return

    def _answer_query_locally(self, k: int) -> QueryReply:
        """Figure 5's query handling applied to our own ``local`` set."""
        if len(self.local) <= k:
            ids = frozenset(self.local)
            self.local.clear()
            return QueryReply(ids, True)
        taken = frozenset(sorted(self.local, key=repr)[:k])
        self.local -= taken
        return QueryReply(taken, False)

    def _ingest_query_reply(self, source: NodeId, reply: QueryReply) -> None:
        if reply.done_flag and source in self.more:
            self._move_more_to_done(source)
        for fresh in reply.ids:
            if fresh not in self.more and fresh not in self.done and fresh != self.node_id:
                self._add_unexplored(fresh)

    def _on_query_reply(self, sender: NodeId, message: QueryReply) -> bool:
        if self.status != "explore" or self._awaiting_query_from != sender:
            if self._restarted:
                # Answer to a query the dead incarnation asked: the ids in
                # it were drained from the member's ``local`` for a
                # conversation nobody remembers.  Absorb what we can so the
                # ids are not lost entirely, but do not touch the explore
                # state machine.
                self._ingest_query_reply(sender, message)
                return True
            raise ProtocolError(
                f"{self.node_id!r}: unexpected query-reply from {sender!r} "
                f"in status {self.status}"
            )
        self._awaiting_query_from = None
        self._ingest_query_reply(sender, message)
        self._explore()
        return True

    # ------------------------------------------------------------------
    # Query answering (Figure 5, inactive side)
    # ------------------------------------------------------------------
    def _on_query(self, sender: NodeId, message: Query) -> bool:
        if self.status != "inactive":
            if self._restarted:
                # The querying leader still thinks we are its member.  Answer
                # "nothing more" without draining ``local``: the leader can
                # retire us from its ``more`` set and move on, while this
                # incarnation keeps (and reports) its own ids.
                self.send(sender, QueryReply(frozenset(), True))
                return True
            raise ProtocolError(
                f"{self.node_id!r}: query from {sender!r} in status {self.status}; "
                "queries only ever reach inactive cluster members"
            )
        self.send(sender, self._answer_query_locally(message.k))
        return True

    # ------------------------------------------------------------------
    # SEARCH (Figures 3, 4, 5)
    # ------------------------------------------------------------------
    def _on_search(self, sender: NodeId, message: Search) -> bool:
        if self.status in ("explore", "conquered", "conqueror"):
            # The pseudocode's EXPLORE / CONQUERED / CONQUEROR loops do not
            # receive searches; they stay queued until the state changes.
            return False
        if self.status == "inactive":
            self._route_search(sender, message)
            return True
        if self.status in ("wait", "passive"):
            self._leader_on_search(sender, message)
            return True
        if self.status == "terminated":
            # A search from a long-dead initiator can still be in flight
            # when the Bounded leader terminates (it was parked in some
            # previous queue during the final merges).  Conquest pairs are
            # monotone along the lineage that absorbed the initiator, so
            # the stale search always loses the comparison; answer abort.
            message = self._absorb_search_target(message)
            if (message.phase, message.initiator) > (self.phase, self.node_id):
                raise ProtocolError(
                    f"{self.node_id!r}: terminated leader outranked by search "
                    f"from {message.initiator!r} -- termination was unsound"
                )
            self.send(
                sender, Release(self.node_id, ABORT, message.initiator, self.phase)
            )
            return True
        raise ProtocolError(
            f"{self.node_id!r}: search in impossible status {self.status}"
        )

    def _route_search(self, sender: NodeId, message: Search) -> None:
        """Figure 5: inactive nodes enqueue and forward searches."""
        message = self._absorb_search_target(message)
        self.previous.append((message, sender))
        if len(self.previous) == 1:
            self.send(self.next, message)

    def _absorb_search_target(self, message: Search) -> Search:
        """Section 4.2: a search's target learns the initiator's id.

        Sets the ``new`` flag so the target's leader moves it from ``done``
        back to ``more`` -- this is what eventually makes every traversed
        edge bidirectional (the crux of Lemma 5.4).
        """
        if message.target == self.node_id and message.initiator not in self.local:
            self.local.add(message.initiator)
            return Search(message.initiator, message.phase, message.target, True)
        return message

    def _leader_on_search(self, sender: NodeId, message: Search) -> None:
        """Figure 4: a waiting or passive leader decides merge vs abort."""
        message = self._absorb_search_target(message)
        if message.new and message.target in self.done:
            self._move_done_to_more(message.target)
        if (message.phase, message.initiator) > (self.phase, self.node_id):
            self.send(
                sender, Release(self.node_id, MERGE, message.initiator, self.phase)
            )
            if self.status == "wait" and self._awaiting_release:
                self._expect_stale_release = True
            self.status = "conquered"
        else:
            self.send(
                sender, Release(self.node_id, ABORT, message.initiator, self.phase)
            )
            if (
                self.status == "wait"
                and not self._awaiting_release
                and (self.unexplored or self._peek_more() is not None)
            ):
                # Interpretation rule 2: the idle waiter got new work.
                self._explore()

    # ------------------------------------------------------------------
    # RELEASE (Figures 4, 5, 6)
    # ------------------------------------------------------------------
    def _on_release(self, sender: NodeId, message: Release) -> bool:
        if message.initiator == self.node_id:
            self._consume_own_release(message)
            return True
        if self.status == "inactive":
            self._route_release(message)
            return True
        if self._restarted:
            # The dead incarnation was a routing hop for this search; its
            # ``previous`` queue is gone, so the release cannot be forwarded.
            # Dropping it strands the initiator (a measured liveness
            # degradation) instead of crashing the run.
            return True
        raise ProtocolError(
            f"{self.node_id!r}: release for {message.initiator!r} in "
            f"status {self.status}; only inactive nodes route releases"
        )

    def _consume_own_release(self, message: Release) -> None:
        """The reply to a search this node initiated as a leader.

        In every outcome except a successful merge the releasing leader's id
        must be fed back into the reporting pipeline via
        :meth:`_absorb_learned_id`.  The pseudocode omits this, but the
        knowledge-graph model adds an edge for every received id and the
        Lemma 5.4 proof relies on releases making traversed edges
        bidirectional; without it a leader whose id was only ever carried by
        release messages to already-dead initiators is lost forever and a
        passive node survives quiescence (reproduction finding F2).
        """
        if self.status == "wait" and self._awaiting_release:
            self._awaiting_release = False
            if message.answer == ABORT:
                if message.leader == self.node_id:
                    # The search walked a pointer chain that led back to us,
                    # so the abort came from ourselves (the (phase, id)
                    # tie).  That only happens when crash-recovery churn
                    # re-circulates an id whose pointer chain already ends
                    # here; it is an answered search, not a lost duel --
                    # keep exploring instead of committing leader suicide.
                    # Deliberately *not* filed as a member: the chain proves
                    # routing, not ownership, and claiming the target could
                    # double-own it (I2).  If nobody owns it, the miss
                    # surfaces as a measured knowledge gap.
                    self._explore()
                    return
                # Figure 4: an aborted leader stops initiating searches.
                self._absorb_learned_id(message.leader)
                self.status = "passive"
                return
            # The reached leader asks to merge into us: become conqueror.
            self.status = "conqueror"
            self._awaiting_info = True
            self.send(message.leader, _MERGE_ACCEPT)
            return
        if self._restarted and self.status == "passive" and message.answer == MERGE:
            # Crash-recovery special case: a restart can shuffle which of
            # this node's releases (the dead incarnation's, re-queued by the
            # transport, or the new one's) arrives first, so "passive" may
            # mean "aborted by a reply meant for the dead incarnation".  A
            # merge offer is the peer leader saying *I lost, absorb me*;
            # refusing it here can leave a component with no leader at all.
            # Passive nodes are owned by nobody, so re-taking leadership to
            # absorb the loser is safe -- and it is the only answer that
            # keeps the component live.
            self.status = "conqueror"
            self._awaiting_info = True
            self.send(message.leader, _MERGE_ACCEPT)
            return
        if self.status in ("passive", "conquered", "inactive"):
            # A stale reply to a search from our leader days (Figures 4-6):
            # refuse merges, ignore aborts -- but keep the leader's id.
            if message.answer == MERGE:
                self.send(message.leader, _MERGE_FAIL)
            if self._expect_stale_release:
                self._expect_stale_release = False
                self._absorb_learned_id(message.leader)
            return
        if self._restarted:
            # Reply to a search the dead incarnation sent: treat it exactly
            # like the stale-reply case above (refuse merges, keep the id).
            if message.answer == MERGE:
                self.send(message.leader, _MERGE_FAIL)
            self._absorb_learned_id(message.leader)
            return
        raise ProtocolError(
            f"{self.node_id!r}: own release ({message.answer}) in "
            f"status {self.status} with awaiting_release={self._awaiting_release}"
        )

    def _route_release(self, message: Release) -> None:
        """Figure 5: pop the oldest pending search, send the release back
        along its path, path-compress, and launch the next pending search."""
        if not self.previous:
            if self._restarted:
                # The routing queue died with the old incarnation; the
                # stranded initiator is a measured degradation (see
                # :meth:`_on_release`).
                return
            raise ProtocolError(
                f"{self.node_id!r}: release to route but previous queue empty"
            )
        _search, came_from = self.previous.popleft()
        if message.phase >= self.phase:
            # Path compression, phase-guarded (finding F3): never replace a
            # newer leader's pointer with a stale one.
            self.next = message.leader
            self.phase = message.phase
        self.send(came_from, message)
        if self.previous:
            pending_search, _y = self.previous[0]
            self.send(self.next, pending_search)

    # ------------------------------------------------------------------
    # Merging (Figures 4, 6)
    # ------------------------------------------------------------------
    def _on_merge_accept(self, sender: NodeId, message: MergeAccept) -> bool:
        if self.status != "conquered":
            if self._restarted:
                # Acceptance of a merge the dead incarnation offered.  The
                # new incarnation no longer has that cluster state to hand
                # over; there is no refusal message for this direction, so
                # drop it and let the accepter's horizon expire.
                return True
            raise ProtocolError(
                f"{self.node_id!r}: merge-accept in status {self.status}"
            )
        self.next = sender
        self.send(
            sender,
            Info(
                self.phase,
                frozenset(self.more),
                frozenset(self.done),
                frozenset(self.unaware),
                frozenset(self.unexplored),
            ),
        )
        self.status = "inactive"
        return True

    def _on_merge_fail(self, sender: NodeId, message: MergeFail) -> bool:
        if self.status != "conquered":
            if self._restarted:
                # Refusal of a merge the dead incarnation offered; nobody
                # waits on this reply, so it is safe to ignore.
                return True
            raise ProtocolError(
                f"{self.node_id!r}: merge-fail in status {self.status}"
            )
        self.status = "passive"
        return True

    def _on_info(self, sender: NodeId, message: Info) -> bool:
        if self.status != "conqueror" or not self._awaiting_info:
            if self._restarted:
                # The dead incarnation sent a MergeAccept; the sender has
                # already gone inactive pointing at us and handed its whole
                # cluster over.  Refusing the inheritance would orphan every
                # one of those members, so accept it whenever this node can
                # act as a leader: from idle ``wait`` or ``passive``,
                # becoming conqueror restores single ownership (the sender
                # genuinely transferred it).  Any other state parks the Info
                # until the node settles.
                if (self.status == "wait" and not self._awaiting_release) or (
                    self.status == "passive"
                ):
                    self.status = "conqueror"
                    self._awaiting_info = False
                    if self.variant == "generic":
                        self._merge_with_unaware(message)
                    else:
                        self._merge_direct(message)
                    return True
                return False
            raise ProtocolError(f"{self.node_id!r}: info in status {self.status}")
        self._awaiting_info = False
        if self.variant == "generic":
            self._merge_with_unaware(message)
        else:
            self._merge_direct(message)
        return True

    def _merge_with_unaware(self, info: Info) -> None:
        """Figure 6: absorb the conquered leader's state, then conquer."""
        newcomers = info.more | info.done | info.unaware
        self.unaware |= newcomers
        for u in info.unexplored:
            if (
                u not in self.unaware
                and u not in self.more
                and u not in self.done
                and u != self.node_id
            ):
                self._add_unexplored(u)
        cluster = len(self.more) + len(self.done) + len(self.unaware)
        if self.phase == info.phase or cluster >= 1 << (self.phase + 1):
            self.phase += 1
        for w in sorted(self.unaware, key=repr):
            self.send(w, Conquer(self.node_id, self.phase))
        if not self.unaware:  # unreachable in practice: info.more holds the sender
            self._explore()

    def _merge_direct(self, info: Info) -> None:
        """Section 4.5: the variants merge sets without the unaware stage."""
        for w in info.more:
            if w in self.done:
                # The conquered leader had fresher knowledge: w owes ids.
                self._move_done_to_more(w)
            else:
                self._add_more(w)
        for w in info.done:
            if w not in self.more and w not in self.done:
                self.done.add(w)
        for u in info.unexplored:
            if u not in self.more and u not in self.done and u != self.node_id:
                self._add_unexplored(u)
        cluster = len(self.more) + len(self.done)
        if self.phase == info.phase or cluster >= 1 << (self.phase + 1):
            self.phase += 1
        self._explore()

    # ------------------------------------------------------------------
    # Conquering (Figures 5, 6)
    # ------------------------------------------------------------------
    def _on_conquer(self, sender: NodeId, message: Conquer) -> bool:
        if self.status != "inactive":
            if self._restarted:
                # The dead incarnation lost a merge battle this conquest
                # concludes, but the restart rewound it to an earlier
                # (possibly leading) state.  Park the conquest: if this
                # incarnation ends up conquered again it resolves to
                # inactive and answers then; if it stays a leader the
                # conqueror's loss is a measured degradation.
                return False
            raise ProtocolError(
                f"{self.node_id!r}: conquer in status {self.status}; "
                "conquer messages only ever reach inactive nodes"
            )
        if message.phase >= self.phase:
            self.next = message.leader
            self.phase = message.phase
        self.send(sender, MoreDone(has_more=bool(self.local)))
        return True

    def _on_more_done(self, sender: NodeId, message: MoreDone) -> bool:
        if self.status == "terminated":
            # Acknowledgements of the Bounded final broadcast (Lemma 5.8's
            # 2n count includes them); nothing left to do with them.
            return True
        if self.status != "conqueror" or self._awaiting_info:
            if self._restarted:
                # Acknowledgement of a conquest the dead incarnation made;
                # the member stays pointed at us, we just lost its pending
                # ids (a measured knowledge degradation, never corruption).
                return True
            raise ProtocolError(
                f"{self.node_id!r}: more-done in status {self.status}"
            )
        if sender not in self.unaware:
            if self._restarted:
                # Rejoin re-broadcasts the conquest, so a member that also
                # answered the pre-crash copy acks twice; collection is
                # idempotent and the duplicate is dropped.
                return True
            raise ProtocolError(
                f"{self.node_id!r}: more-done from {sender!r} not in unaware"
            )
        self.unaware.discard(sender)
        if message.has_more:
            self._add_more(sender)
        else:
            self.done.add(sender)
        if not self.unaware:
            self._explore()
        return True

    def _terminate_bounded(self) -> None:
        """Theorem 4: |done| reached the known component size -- finish."""
        self.status = "terminated"
        for w in sorted(self.done, key=repr):
            if w != self.node_id:
                self.send(w, Conquer(self.node_id, self.phase))

    # ------------------------------------------------------------------
    # Ad-hoc probes (Section 4.5.2)
    # ------------------------------------------------------------------
    @property
    def probe_outstanding(self) -> bool:
        """Whether this node is still waiting on a probe reply.

        A node carries at most one probe of its own at a time; callers
        that inject probes asynchronously (the service driver) check this
        to defer rather than trip :meth:`initiate_probe`'s guard.
        """
        return self._probe_outstanding

    def initiate_probe(self) -> Optional[Tuple[NodeId, FrozenSet[NodeId]]]:
        """Request the current id snapshot of this node's component.

        Leaders answer from their own state with zero messages; other nodes
        send a ``probe`` along their ``next`` pointer, and the reply lands
        in :attr:`probe_results` once the simulation quiesces.
        """
        if self.variant != "adhoc":
            raise ProtocolError("probes are an Ad-hoc Resource Discovery feature")
        if not self.awake:
            raise ProtocolError(f"{self.node_id!r} is asleep; wake it before probing")
        if self.is_leader:
            return (self.node_id, self.knowledge)
        if self._probe_outstanding:
            raise ProtocolError(f"{self.node_id!r} already has a probe outstanding")
        self._probe_outstanding = True
        # Route through the normal inbox so passive/conquered nodes park the
        # probe until they resolve to inactive (and thus have a real ``next``).
        self._inbox.append((self.node_id, Probe(self.node_id)))
        self._pump()
        return None

    def _on_probe(self, sender: NodeId, message: Probe) -> bool:
        if message.initiator == self.node_id and self.status == "inactive":
            # Our own probe (possibly deferred from a transient state):
            # forward it without enqueueing -- its reply is consumed directly
            # by initiator match, never popped from probe_previous.
            self.send(self.next, message)
            return True
        if self.is_leader:
            self.send(sender, ProbeReply(self.node_id, self.knowledge, message.initiator))
            return True
        if self.status == "inactive":
            self.probe_previous.append((message, sender))
            if len(self.probe_previous) == 1:
                self.send(self.next, message)
            return True
        # Passive / conquered nodes resolve to inactive eventually; park it.
        return False

    def _on_probe_reply(self, sender: NodeId, message: ProbeReply) -> bool:
        if message.initiator == self.node_id:
            self.probe_results.append((message.leader, message.ids))
            self._probe_outstanding = False
            if self._rejoining:
                # Crash-recovery re-attach: the reply names the component's
                # current leader, which is exactly the ``next`` pointer a
                # restarted inactive node needs.
                self._rejoining = False
                if self.status == "inactive":
                    self.next = message.leader
            return True
        if self.status != "inactive":
            if self._restarted:
                return True  # probe route died with the old incarnation
            raise ProtocolError(
                f"{self.node_id!r}: probe-reply to route in status {self.status}"
            )
        if not self.probe_previous:
            if self._restarted:
                return True  # probe route died with the old incarnation
            raise ProtocolError(
                f"{self.node_id!r}: probe-reply but probe queue empty"
            )
        _probe, came_from = self.probe_previous.popleft()
        self.next = message.leader
        self.send(came_from, message)
        if self.probe_previous:
            pending_probe, _y = self.probe_previous[0]
            self.send(self.next, pending_probe)
        return True

    # ------------------------------------------------------------------
    # Late-learned ids and dynamic additions (Section 6)
    # ------------------------------------------------------------------
    def _absorb_learned_id(self, other: NodeId) -> None:
        """Feed a just-learned id back into the reporting pipeline.

        Implements the knowledge-graph rule that a received id is a new
        edge, with Section 6's two cases: an unreported node simply grows
        its ``local`` set; a node that had already reported everything must
        re-open itself at its leader -- inactive nodes via a phase-0
        notification search with the ``new`` flag, ex-/current leaders by
        moving their own entry from ``done`` back to ``more``.
        """
        if other == self.node_id or other in self.local:
            return
        if self.status == "inactive":
            had_reported_all = not self.local
            self.local.add(other)
            if had_reported_all:
                self.send(
                    self.next,
                    Search(self.node_id, NOTIFY_PHASE, self.node_id, True),
                )
            return
        self.local.add(other)
        if self.node_id in self.done:
            self._move_done_to_more(self.node_id)

    def rejoin(self) -> None:
        """Re-enter the protocol after a crash-recovery restart.

        Called by :mod:`repro.faults.recovery` once the node's durable
        state (the Figure 2 fields) has been restored and its transport
        restarted under a fresh incarnation epoch.  Every volatile
        conversation -- outstanding searches, queries, merge handshakes --
        died with the crash (epoch fencing discards the replies), so each
        restored status is normalised to a state that makes progress
        without them:

        * ``explore``/``wait``: re-run the Figure 3 loop -- it re-issues
          whatever search or query the crash orphaned;
        * ``conqueror`` with pending ``unaware`` members: re-broadcast the
          conquest (conquer is idempotent towards inactive nodes -- the
          phase guard keeps re-conquest safe); with none, back to the loop;
        * ``conquered``: the merge handshake is dead; demote to passive
          (exactly where a failed merge leaves a leader).  The conquering
          leader's own retry logic -- or give-up -- handles its side;
        * ``inactive``: the ``next`` pointer may name a leader long since
          conquered; re-probe the component (the Ad-hoc rejoin path) so
          the reply refreshes ``next``;
        * ``passive``/``terminated``: nothing outstanding, nothing to do.
        """
        if self.status in ("explore", "wait"):
            self._explore()
            self._pump()
        elif self.status == "conqueror":
            if self.unaware:
                for w in sorted(self.unaware, key=repr):
                    self.send(w, Conquer(self.node_id, self.phase))
            else:
                self._explore()
            self._pump()
        elif self.status == "conquered":
            self.status = "passive"
        elif self.status == "inactive" and self.next != self.node_id:
            self._rejoining = True
            self._probe_outstanding = True
            # Route through the normal inbox, exactly like initiate_probe
            # (bypassing its Ad-hoc guard: the probe plumbing is variant-
            # agnostic and rejoin needs it everywhere).
            self._inbox.append((self.node_id, Probe(self.node_id)))
            self._pump()

    def notify_new_link(self, target: NodeId) -> None:
        """A new knowledge edge ``self -> target`` appeared at runtime.

        Section 6's dynamic-link operation; additionally revives an idle
        waiting leader so the new edge gets explored without outside help.
        """
        self._absorb_learned_id(target)
        if self.status == "wait" and not self._awaiting_release and (
            self.unexplored or self._peek_more() is not None
        ):
            self._explore()
            self._replay_deferred()
        self._pump()


# Dispatch table: one dict hit per delivered message instead of a chain of
# string comparisons.  Keyed by the wire msg_type, bound late so subclasses
# overriding a handler method would need to rebuild it -- none exist; the
# class is final in practice.
DiscoveryNode._HANDLERS = {
    "query": DiscoveryNode._on_query,
    "query-reply": DiscoveryNode._on_query_reply,
    "search": DiscoveryNode._on_search,
    "release": DiscoveryNode._on_release,
    "merge-accept": DiscoveryNode._on_merge_accept,
    "merge-fail": DiscoveryNode._on_merge_fail,
    "info": DiscoveryNode._on_info,
    "conquer": DiscoveryNode._on_conquer,
    "more-done": DiscoveryNode._on_more_done,
    "probe": DiscoveryNode._on_probe,
    "probe-reply": DiscoveryNode._on_probe_reply,
}

#: Pristine behaviour attributes captured at class-definition time.  The
#: array-backed core (:mod:`repro.core.arraystate`) inlines the whole state
#: machine, so it must decline to engage whenever any behaviour-bearing
#: class attribute has been replaced after the fact -- tests and ablation
#: harnesses monkeypatch methods like ``_absorb_learned_id`` on the class
#: to reproduce findings, and those patches must keep taking effect.
#: Instance-level shadowing is checked separately per node.
PRISTINE_BEHAVIOR = tuple(
    (name, value)
    for name, value in vars(DiscoveryNode).items()
    if callable(value) or isinstance(value, property)
) + (("_HANDLERS_ITEMS", tuple(DiscoveryNode._HANDLERS.items())),)


def behavior_is_pristine() -> bool:
    """Whether :class:`DiscoveryNode` still carries its original methods."""
    d = vars(DiscoveryNode)
    for name, value in PRISTINE_BEHAVIOR:
        if name == "_HANDLERS_ITEMS":
            if tuple(DiscoveryNode._HANDLERS.items()) != value:
                return False
        elif d.get(name) is not value:
            return False
    return True
