"""Array-backed protocol core: the Figure-2 state machine on dense ints.

PR 6's compiled run loop (:mod:`repro.sim.fastcore`, DESIGN.md SS12) moved
the bottleneck out of the simulator and into the protocol itself: at
n >= 10^5 the remaining cost is dict-of-sets cluster state on
:class:`~repro.core.node.DiscoveryNode`, frozen-dataclass message
construction, and attribute-heavy handler dispatch.  This module removes
all three by running the *same* state machine over columnar state:

* **Id interning** (:class:`IdSpace`): node ids become dense ints
  ``0..n-1`` in simulator insertion order.  Two total orders are
  precomputed -- the *repr order* the object path uses for its
  deterministic-choice heaps and broadcasts, and the *natural order* the
  ``(phase, id)`` conquest comparisons use.  Ids whose reprs collide or
  that are not strictly totally ordered make the system ineligible (the
  object path keeps running them).
* **Columnar node state**: every Figure-2 field becomes a flat list or
  bytearray indexed by node int.  The ``more``/``unexplored`` choice heaps
  hold repr-rank ints instead of ``(repr_string, id)`` tuples -- one int
  compare per sift instead of a string compare.
* **Flyweight messages**: plain tuples ``(tag, ...)`` with the dense wire
  tags of :mod:`repro.core.messages`; the payload-free handshakes are
  preallocated module singletons, so the hot path allocates at most one
  small tuple per send and zero for handshakes.
* **Int-only scheduler pool**: channel ids stay the non-negative ints of
  the fastcore seam, and *wake tokens* are encoded as ``-1 - node_int`` --
  the whole pool is ints, so the pop loop dispatches on a sign check
  instead of ``type(token)``.

Engagement and deopt
--------------------
:func:`maybe_run_array` is called by :func:`repro.sim.fastcore.run_fast`
*after* ``eligible(sim)`` already held.  It additionally requires: every
node is exactly a :class:`DiscoveryNode` (no transport wrappers, no
recovery state, no instance-patched handlers), the pool holds only wake
and deliver tokens, all in-flight messages are stock message types, and
the pending pool is large enough to amortize conversion
(``4 * len(pool) >= n`` -- dynamic ad-hoc touch-ups with a handful of
pending events stay on the object fast loop).  Any violation returns
``None`` and the caller falls through; *nothing is mutated until every
check has passed*.

On every exit -- quiescence, :class:`StepLimitExceeded`, or a handler
exception -- the columnar state is materialized back onto the live node
objects, channel deques and scheduler pool, so the simulator is always in
a legal object-path state when anyone else can look at it.  Traces are
emitted live with original ids (and dataclass payloads for digests), and
stats fold through :meth:`MessageStats.record_indexed` preserving the
first-send key order the per-message path would have produced.  The
differential suite (``tests/test_fastcore_equivalence.py`` and
``tests/test_arraystate.py``) pins all of this bit-for-bit.

:func:`run_graph` is the million-node driver: it builds the columns
straight from a :class:`KnowledgeGraph` -- no ``DiscoveryNode`` objects at
all (10^6 of them cost ~4 GB before the first message) -- runs the same
loop, and verifies the problem's properties in O(n + E).
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from dataclasses import dataclass
from operator import itemgetter
from random import Random as _Random
from sys import maxsize
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.messages import (
    ABORT,
    MERGE,
    MSG_TYPES,
    Conquer,
    Info,
    MergeAccept,
    MergeFail,
    MoreDone,
    Probe,
    ProbeReply,
    Query,
    QueryReply,
    Release,
    Search,
    T_CONQUER,
    T_INFO,
    T_MERGE_ACCEPT,
    T_MERGE_FAIL,
    T_MORE_DONE,
    T_PROBE,
    T_PROBE_REPLY,
    T_QUERY,
    T_QUERY_REPLY,
    T_RELEASE,
    T_SEARCH,
    WIRE_MERGE_ACCEPT,
    WIRE_MERGE_FAIL,
    WIRE_MORE_DONE_FALSE,
    WIRE_MORE_DONE_TRUE,
    fixed_bit_bases,
)
from repro.core import arrayloop as _arrayloop
from repro.core.node import (
    DiscoveryNode,
    LEADER_STATES,
    ProtocolError,
    STATUS_CODES,
    STATUS_NAMES,
    VARIANTS,
    behavior_is_pristine,
)
from repro.sim.events import DeliverToken, WakeToken
from repro.sim.network import SimulationError, StepLimitExceeded
from repro.sim.trace import MessageStats, TraceEvent

__all__ = [
    "IdSpace",
    "ArrayCore",
    "ScaleResult",
    "maybe_run_array",
    "run_graph",
    "rank_sorted",
    "k_smallest",
]

# Pool-layout modes; must match repro.sim.fastcore's _FIFO/_LIFO/_RANDOM
# (fastcore passes them through and cannot be imported here -- it imports
# this module).
_FIFO, _LIFO, _RANDOM = 0, 1, 2

# Dense status codes (indexes into STATUS_NAMES; the tuple order in
# core.node is frozen precisely so these stay valid).
(
    _ASLEEP,
    _EXPLORE,
    _WAIT,
    _CONQUERED,
    _CONQUEROR,
    _PASSIVE,
    _INACTIVE,
    _TERMINATED,
) = range(8)

#: status code -> is this a leader state (paper definition; byte lookup).
IS_LEADER = bytes(
    1 if STATUS_NAMES[code] in LEADER_STATES else 0 for code in range(8)
)

_GENERIC, _BOUNDED, _ADHOC = 0, 1, 2
_VARIANT_CODES = {name: code for code, name in enumerate(VARIANTS)}

#: exact message class -> wire tag (exact type on purpose: a message
#: subclass may change bit_size or semantics, so it deopts).
_TAG_OF = {
    Query: T_QUERY,
    QueryReply: T_QUERY_REPLY,
    Search: T_SEARCH,
    Release: T_RELEASE,
    MergeAccept: T_MERGE_ACCEPT,
    MergeFail: T_MERGE_FAIL,
    Info: T_INFO,
    Conquer: T_CONQUER,
    MoreDone: T_MORE_DONE,
    Probe: T_PROBE,
    ProbeReply: T_PROBE_REPLY,
}

#: DiscoveryNode behaviour attributes that, when shadowed by an *instance*
#: attribute (profilers and tests patch nodes that way), force the object
#: path so the wrappers see every call.
_NODE_WRAPPABLE = frozenset(
    {
        "on_message",
        "on_wake",
        "send",
        "_dispatch",
        "_pump",
        "_explore",
        "initiate_probe",
    }
)

#: Fresh-node signature (see ``_build_from_sim``): two C-level itemgetter
#: grabs plus a tuple compare and ``any()`` replace ~20 interpreted dict
#: lookups per node on the dominant just-built workload.  The scalar
#: compare is by equality where the long-hand check used truthiness; the
#: only effect of that stricter gate is routing exotic hand-mutated
#: states (``awake=None`` and friends) to the general conversion below,
#: which normalizes them identically.
_FRESH_SCALARS = itemgetter(
    "status",
    "awake",
    "phase",
    "_awaiting_release",
    "_awaiting_query_from",
    "_awaiting_info",
    "_expect_stale_release",
    "_probe_outstanding",
    "_restarted",
    "_rejoining",
    "_processing",
)
_FRESH_STATE = ("asleep", False, 1, False, None, False, False, False, False, False, False)
_FRESH_CONTAINERS = itemgetter(
    "done",
    "unaware",
    "unexplored",
    "previous",
    "probe_previous",
    "_inbox",
    "_deferred",
)

#: Do not convert tiny workloads: a post-quiescence touch-up (one probe,
#: one add_link notification) is a handful of steps, while conversion and
#: materialization are O(n + channels).  The object fast loop handles
#: those; initial discovery runs (pool ~ n wake tokens) always engage.
_MIN_POOL_FACTOR = 4


class _Ineligible(Exception):
    """Internal: this simulator state cannot take the array path."""


#: The function behind ``Random._randbelow`` -- used to recognize a stock
#: RNG whose draw loop the run loop may inline over C-level getrandbits.
_RANDBELOW = _Random._randbelow

#: step-limit ceiling handed to the C loop; ``stop`` can be
#: ``steps + maxsize`` which overflows a C long, and no run gets
#: anywhere near 2^62 steps.
_C_STOP_CAP = 1 << 62


# ----------------------------------------------------------------------
# Density-rule helpers (DESIGN.md SS15)
# ----------------------------------------------------------------------
def rank_sorted(members, repr_rank, by_repr_rank) -> List[int]:
    """Members of an int-id set in deterministic repr order.

    The object path computes ``sorted(s, key=repr)``.  Here the repr order
    is precomputed, so the density rule picks between two equivalents:
    dense sets (>= 1/8 of the universe) enumerate the global rank order
    against a bytearray membership mark -- O(n) with tiny constants, no
    comparison sort -- while sparse sets sort by rank, O(m log m) int
    compares.  Both return exactly ``sorted(members, key=repr_of_id)``.
    """
    n = len(by_repr_rank)
    if len(members) * 8 >= n:
        mark = bytearray(n)
        for w in members:
            mark[w] = 1
        return [w for w in by_repr_rank if mark[w]]
    return sorted(members, key=repr_rank.__getitem__)


def k_smallest(members, k: int, repr_rank) -> List[int]:
    """First ``k`` members in repr order (Figure 5 query answering).

    Equivalent to ``sorted(members, key=rank)[:k]``; for small ``k``
    relative to the set, ``heapq.nsmallest`` does it in O(m log k)
    (nsmallest is documented to return its result sorted).
    """
    if k * 8 < len(members):
        return heapq.nsmallest(k, members, key=repr_rank.__getitem__)
    return sorted(members, key=repr_rank.__getitem__)[:k]


# ----------------------------------------------------------------------
# Id interning
# ----------------------------------------------------------------------
class IdSpace:
    """Dense-int interning of node ids plus the two total orders the
    protocol observes.

    ``repr_rank[i]`` ranks node int ``i`` by ``repr(id)`` -- the order of
    the object path's deterministic-choice heaps, broadcast loops and
    ``sorted(..., key=repr)`` calls.  ``nat_rank[i]`` ranks by the ids'
    natural ``<`` -- the tiebreak of the ``(phase, id)`` conquest rule.
    Both must be *strict* total orders for rank comparisons to agree with
    object comparisons; any violation (duplicate reprs, unorderable or
    equal-comparing ids) raises and the caller falls back to the object
    path.
    """

    __slots__ = ("ids", "index", "repr_rank", "by_repr_rank", "nat_rank", "n")

    def __init__(self, ids) -> None:
        ids = list(ids)
        n = len(ids)
        reprs = [repr(x) for x in ids]
        if len(set(reprs)) != n:
            raise _Ineligible("node id reprs are not unique")
        by_repr = sorted(range(n), key=reprs.__getitem__)
        repr_rank = [0] * n
        for rank, i in enumerate(by_repr):
            repr_rank[i] = rank
        try:
            by_nat = sorted(range(n), key=ids.__getitem__)
        except TypeError as exc:
            raise _Ineligible(f"node ids are not mutually orderable: {exc}")
        for a, b in zip(by_nat, by_nat[1:]):
            # Strictness: stable sort gives equal-comparing distinct ids
            # adjacent ranks, which would invent an order the object
            # path's tuple comparison does not have.
            if not ids[a] < ids[b]:
                raise _Ineligible("node ids are not strictly totally ordered")
        nat_rank = [0] * n
        for rank, i in enumerate(by_nat):
            nat_rank[i] = rank
        self.ids = ids
        self.index = {x: i for i, x in enumerate(ids)}
        self.repr_rank = repr_rank
        self.by_repr_rank = by_repr
        self.nat_rank = nat_rank
        self.n = n


# ----------------------------------------------------------------------
# Wire <-> object message conversion
# ----------------------------------------------------------------------
def _to_wire(message, idx) -> tuple:
    """Convert a stock message object to its int-id wire tuple.

    Raises :class:`_Ineligible` for unknown (or subclassed) message types
    and for payload ids outside the interned space.
    """
    tag = _TAG_OF.get(type(message))
    if tag is None:
        raise _Ineligible(f"uninternable message type {type(message).__name__}")
    try:
        if tag == T_SEARCH:
            return (
                tag,
                idx[message.initiator],
                message.phase,
                idx[message.target],
                message.new,
            )
        if tag == T_RELEASE:
            return (
                tag,
                idx[message.leader],
                message.answer == MERGE,
                idx[message.initiator],
                message.phase,
            )
        if tag == T_QUERY:
            return (tag, message.k)
        if tag == T_QUERY_REPLY:
            return (tag, frozenset(idx[x] for x in message.ids), message.done_flag)
        if tag == T_INFO:
            return (
                tag,
                message.phase,
                frozenset(idx[x] for x in message.more),
                frozenset(idx[x] for x in message.done),
                frozenset(idx[x] for x in message.unaware),
                frozenset(idx[x] for x in message.unexplored),
            )
        if tag == T_CONQUER:
            return (tag, idx[message.leader], message.phase)
        if tag == T_MORE_DONE:
            return WIRE_MORE_DONE_TRUE if message.has_more else WIRE_MORE_DONE_FALSE
        if tag == T_MERGE_ACCEPT:
            return WIRE_MERGE_ACCEPT
        if tag == T_MERGE_FAIL:
            return WIRE_MERGE_FAIL
        if tag == T_PROBE:
            return (tag, idx[message.initiator])
        return (
            tag,
            idx[message.leader],
            frozenset(idx[x] for x in message.ids),
            idx[message.initiator],
        )
    except KeyError as exc:
        raise _Ineligible(f"message payload references unknown id {exc}")


def _to_message(msg: tuple, ids):
    """Materialize a wire tuple back into the equivalent stock dataclass."""
    tag = msg[0]
    if tag == T_SEARCH:
        return Search(ids[msg[1]], msg[2], ids[msg[3]], msg[4])
    if tag == T_RELEASE:
        return Release(ids[msg[1]], MERGE if msg[2] else ABORT, ids[msg[3]], msg[4])
    if tag == T_QUERY:
        return Query(msg[1])
    if tag == T_QUERY_REPLY:
        return QueryReply(frozenset(ids[x] for x in msg[1]), msg[2])
    if tag == T_INFO:
        return Info(
            msg[1],
            frozenset(ids[x] for x in msg[2]),
            frozenset(ids[x] for x in msg[3]),
            frozenset(ids[x] for x in msg[4]),
            frozenset(ids[x] for x in msg[5]),
        )
    if tag == T_CONQUER:
        return Conquer(ids[msg[1]], msg[2])
    if tag == T_MORE_DONE:
        return MoreDone(msg[1])
    if tag == T_MERGE_ACCEPT:
        return MergeAccept()
    if tag == T_MERGE_FAIL:
        return MergeFail()
    if tag == T_PROBE:
        return Probe(ids[msg[1]])
    return ProbeReply(ids[msg[1]], frozenset(ids[x] for x in msg[2]), ids[msg[3]])


# ----------------------------------------------------------------------
# The columnar core
# ----------------------------------------------------------------------
class ArrayCore:
    """Columnar Figure-2 state for ``n`` nodes plus interned channels.

    Built either from a live simulator (:func:`maybe_run_array`) or
    straight from a graph (:func:`run_graph`).  ``fill=True`` initializes
    every node to the fresh ``DiscoveryNode.__init__`` state (asleep,
    ``more = {self}``); ``fill=False`` leaves placeholder columns for a
    builder that assigns every slot.
    """

    __slots__ = (
        "space",
        "ids",
        "idx",
        "rrank",
        "by_rrank",
        "nrank",
        "n",
        "id_bits",
        # -- Figure 2 columns ------------------------------------------
        "status",
        "awake",
        "nxt",
        "phase",
        "local",
        "done",
        "more",
        "unaware",
        "unexp",
        "mheap",
        "uheap",
        "previous",
        # -- event-driven bookkeeping ----------------------------------
        "inbox",
        "deferred",
        "aw_rel",
        "aw_query",
        "aw_info",
        "expect_stale",
        # -- ad-hoc probe machinery ------------------------------------
        "probe_prev",
        "presults",
        "probe_out",
        # -- per-node configuration ------------------------------------
        "variant",
        "csize",
        "greedy",
        # -- interned channels -----------------------------------------
        "chanq",
        "chana",
        "chanp",
        "chan_src",
        "chan_dst",
        "out",
        "base_channels",
        # -- canonical int objects (C loop) ----------------------------
        "iobj",
        # -- accounting ------------------------------------------------
        "counts",
        "bits",
        "xtra",
        "order",
        "steps",
        "steps_out",
    )

    def __init__(self, space: IdSpace, id_bits: int, *, fill: bool) -> None:
        n = space.n
        self.space = space
        self.ids = space.ids
        self.idx = space.index
        self.rrank = space.repr_rank
        self.by_rrank = space.by_repr_rank
        self.nrank = space.nat_rank
        self.n = n
        self.id_bits = id_bits
        rrank = space.repr_rank
        if fill:
            self.status = bytearray(n)  # all _ASLEEP
            self.awake = bytearray(n)
            self.nxt = list(range(n))
            self.phase = [1] * n
            self.local = [set() for _ in range(n)]
            self.done = [set() for _ in range(n)]
            self.more = [{i} for i in range(n)]
            self.unaware = [set() for _ in range(n)]
            self.unexp = [set() for _ in range(n)]
            self.mheap = [[rrank[i]] for i in range(n)]
            self.uheap = [[] for _ in range(n)]
        else:
            self.status = bytearray(n)
            self.awake = bytearray(n)
            self.nxt = [0] * n
            self.phase = [1] * n
            self.local = [None] * n
            self.done = [None] * n
            self.more = [None] * n
            self.unaware = [None] * n
            self.unexp = [None] * n
            self.mheap = [None] * n
            self.uheap = [None] * n
        # Lazy per-node containers: ``None`` until first use keeps the
        # common case (never routed a search, never probed) allocation-free.
        self.previous = [None] * n
        self.inbox = [None] * n
        self.deferred = [None] * n
        self.aw_rel = bytearray(n)
        self.aw_query = [-1] * n
        self.aw_info = bytearray(n)
        self.expect_stale = bytearray(n)
        self.probe_prev = [None] * n
        self.presults = [None] * n
        self.probe_out = bytearray(n)
        self.variant = bytearray(n)
        self.csize = [None] * n
        self.greedy = bytearray(n)
        self.chanq = []
        # Parallel caches of each deque's bound ``append``/``popleft``:
        # the loop and the transport hit one channel per step, and the
        # attribute lookup per hit is pure overhead.
        self.chana = []
        self.chanp = []
        self.chan_src = []
        self.chan_dst = []
        self.out = [None] * n
        #: channel count at build time; channels past this index were
        #: created mid-run and must be registered on the simulator's
        #: ``_channels`` dict at materialization (the graph driver has no
        #: simulator, so they just live here).
        self.base_channels = 0
        #: ``iobj[i] is i`` as a Python object -- the canonical int table
        #: the C loop borrows for set membership and message fields, so it
        #: never allocates node-int objects on the hot path.
        self.iobj = list(range(n))
        self.counts = [0] * len(MSG_TYPES)
        self.bits = [0] * len(MSG_TYPES)
        #: extra id payload count per tag; ``bits`` is derived from
        #: ``counts``/``xtra`` when the loop exits, so the per-send path
        #: only ever bumps integers.
        self.xtra = [0] * len(MSG_TYPES)
        self.order = []
        self.steps = 0
        self.steps_out = 0

    # ------------------------------------------------------------------
    # The engine
    # ------------------------------------------------------------------
    def run_loop(self, pool, mode, randbelow, limit, trace_events, quiescent, limit_msg):
        """Run the state machine until the pool drains (or ``limit``).

        ``pool`` holds only ints: channel ids ``>= 0`` (deliveries) and
        ``-1 - node_int`` (wake-ups).  ``quiescent``/``limit_msg`` are
        callables so the simulator-backed and graph-backed drivers can
        plug their own formulas.  Returns executed step count; updates
        ``self.steps_out`` on every exit for the materializer.
        """
        # -- bind columns as locals (the whole point of the module) ------
        ids = self.ids
        rrank = self.rrank
        by_rrank = self.by_rrank
        nrank = self.nrank
        status = self.status
        awake = self.awake
        nxt = self.nxt
        phase = self.phase
        local = self.local
        done = self.done
        more = self.more
        unaware = self.unaware
        unexp = self.unexp
        mheap = self.mheap
        uheap = self.uheap
        previous = self.previous
        inbox = self.inbox
        deferred = self.deferred
        aw_rel = self.aw_rel
        aw_query = self.aw_query
        aw_info = self.aw_info
        expect_stale = self.expect_stale
        probe_prev = self.probe_prev
        presults = self.presults
        probe_out = self.probe_out
        variant = self.variant
        csize = self.csize
        greedy = self.greedy
        chanq = self.chanq
        chana = self.chana
        chanp = self.chanp
        chan_src = self.chan_src
        chan_dst = self.chan_dst
        out = self.out
        new_deque = deque
        counts = self.counts
        bits = self.bits
        xtra = self.xtra
        order = self.order
        bases = fixed_bit_bases(self.id_bits)
        idc = self.id_bits if self.id_bits > 1 else 1
        heappush = heapq.heappush
        heappop = heapq.heappop
        pool_append = pool.append
        is_leader = IS_LEADER
        status_names = STATUS_NAMES
        # Wire tags and status codes compared in the delivery chain, as
        # locals (module globals cost a dict probe per load in the loop).
        t_search = T_SEARCH
        t_release = T_RELEASE
        t_more_done = T_MORE_DONE
        t_query = T_QUERY
        t_query_reply = T_QUERY_REPLY
        t_conquer = T_CONQUER
        t_probe = T_PROBE
        s_explore = _EXPLORE
        s_wait = _WAIT
        s_conquered = _CONQUERED
        s_conqueror = _CONQUEROR
        s_passive = _PASSIVE
        s_inactive = _INACTIVE
        s_terminated = _TERMINATED
        md_true = WIRE_MORE_DONE_TRUE
        md_false = WIRE_MORE_DONE_FALSE

        # -- transport ---------------------------------------------------
        def emit(src, dst, tag, msg):
            if dst == src:
                # Parity with SimNode.send's guard (protocol-impossible).
                raise SimulationError(
                    f"node {ids[src]!r} tried to message itself with "
                    f"{MSG_TYPES[tag]!r}; self-interactions must be simulated "
                    "internally (Section 4.1)"
                )
            d = out[src]
            if d is None:
                d = out[src] = {}
            cid = d.get(dst)
            if cid is None:
                # Mid-run channels are created as bare deques and synced
                # onto ``sim._channels`` at materialization -- nothing can
                # observe the dict mid-run on this path.
                cid = len(chanq)
                q = new_deque()
                chanq.append(q)
                chana.append(q.append)
                chanp.append(q.popleft)
                chan_src.append(src)
                chan_dst.append(dst)
                d[dst] = cid
            c = counts[tag]
            if not c:
                order.append(tag)
            counts[tag] = c + 1
            chana[cid](msg)
            pool_append(cid)

        def emitx(src, dst, tag, msg, extra_ids):
            # Messages that carry a variable id payload; the id count is
            # accumulated here and folded into ``bits`` at loop exit.
            xtra[tag] += extra_ids
            emit(src, dst, tag, msg)

        # -- deterministic choice helpers --------------------------------
        def add_more(i, w):
            mo = more[i]
            if w not in mo:
                mo.add(w)
                heappush(mheap[i], rrank[w])

        def add_unexplored(i, u):
            ux = unexp[i]
            if u not in ux:
                ux.add(u)
                heappush(uheap[i], rrank[u])

        def peek_more(i):
            heap = mheap[i]
            mo = more[i]
            while heap:
                w = by_rrank[heap[0]]
                if w in mo:
                    return w
                heappop(heap)
            return -1

        def pop_unexplored(i):
            heap = uheap[i]
            ux = unexp[i]
            while heap:
                u = by_rrank[heappop(heap)]
                if u not in ux:
                    continue
                ux.discard(u)
                if u == i or u in more[i] or u in done[i] or u in unaware[i]:
                    continue
                return u
            return -1

        # -- EXPLORE (Figure 3) ------------------------------------------
        def take_local(i, k):
            # _answer_query_locally without the message wrapper.
            loc = local[i]
            if len(loc) <= k:
                taken = frozenset(loc)
                loc.clear()
                return taken, True
            taken = frozenset(k_smallest(loc, k, rrank))
            loc -= taken
            return taken, False

        def ingest_reply(i, source, id_set, done_flag):
            if done_flag and source in more[i]:
                more[i].discard(source)
                done[i].add(source)
            mo = more[i]
            dn = done[i]
            for fresh in id_set:
                if fresh not in mo and fresh not in dn and fresh != i:
                    add_unexplored(i, fresh)

        def explore(i):
            status[i] = _EXPLORE
            while True:
                if variant[i] == _BOUNDED and len(done[i]) == csize[i]:
                    terminate_bounded(i)
                    return
                target = pop_unexplored(i)
                if target >= 0:
                    status[i] = _WAIT
                    aw_rel[i] = 1
                    emit(i, target, T_SEARCH, (T_SEARCH, i, phase[i], target, False))
                    return
                candidate = peek_more(i)
                if candidate < 0:
                    status[i] = _WAIT
                    aw_rel[i] = 0
                    return
                k = (1 << 62) if greedy[i] else len(more[i]) + len(done[i]) + 1
                if candidate == i:
                    taken, done_flag = take_local(i, k)
                    ingest_reply(i, i, taken, done_flag)
                    continue
                aw_query[i] = candidate
                emit(i, candidate, T_QUERY, (T_QUERY, k))
                return

        def terminate_bounded(i):
            status[i] = _TERMINATED
            cq = (T_CONQUER, i, phase[i])
            for w in rank_sorted(done[i], rrank, by_rrank):
                if w != i:
                    emit(i, w, T_CONQUER, cq)

        # -- Section 6 late-learned ids ----------------------------------
        def absorb_learned_id(i, other):
            loc = local[i]
            if other == i or other in loc:
                return
            if status[i] == _INACTIVE:
                had_reported_all = not loc
                loc.add(other)
                if had_reported_all:
                    emit(i, nxt[i], T_SEARCH, (T_SEARCH, i, 0, i, True))
                return
            loc.add(other)
            if i in done[i]:
                done[i].discard(i)
                add_more(i, i)

        # -- handlers (wire tag order) -----------------------------------
        def h_query(i, sender, msg):
            if status[i] != _INACTIVE:
                raise ProtocolError(
                    f"{ids[i]!r}: query from {ids[sender]!r} in status "
                    f"{status_names[status[i]]}; queries only ever reach "
                    "inactive cluster members"
                )
            taken, done_flag = take_local(i, msg[1])
            emitx(i, sender, T_QUERY_REPLY, (T_QUERY_REPLY, taken, done_flag), len(taken))
            return True

        def h_query_reply(i, sender, msg):
            if status[i] != _EXPLORE or aw_query[i] != sender:
                raise ProtocolError(
                    f"{ids[i]!r}: unexpected query-reply from {ids[sender]!r} "
                    f"in status {status_names[status[i]]}"
                )
            aw_query[i] = -1
            ingest_reply(i, sender, msg[1], msg[2])
            explore(i)
            return True

        def absorb_target(i, msg):
            # Section 4.2: the search's target learns the initiator's id.
            if msg[3] == i and msg[1] not in local[i]:
                local[i].add(msg[1])
                return (T_SEARCH, msg[1], msg[2], msg[3], True)
            return msg

        def leader_on_search(i, sender, msg):
            msg = absorb_target(i, msg)
            initiator = msg[1]
            mphase = msg[2]
            if msg[4] and msg[3] in done[i]:
                done[i].discard(msg[3])
                add_more(i, msg[3])
            if mphase > phase[i] or (
                mphase == phase[i] and nrank[initiator] > nrank[i]
            ):
                emit(i, sender, T_RELEASE, (T_RELEASE, i, True, initiator, phase[i]))
                if status[i] == _WAIT and aw_rel[i]:
                    expect_stale[i] = 1
                status[i] = _CONQUERED
            else:
                emit(i, sender, T_RELEASE, (T_RELEASE, i, False, initiator, phase[i]))
                if (
                    status[i] == _WAIT
                    and not aw_rel[i]
                    and (unexp[i] or peek_more(i) >= 0)
                ):
                    explore(i)

        def h_search(i, sender, msg):
            st = status[i]
            if st == _EXPLORE or st == _CONQUERED or st == _CONQUEROR:
                return False
            if st == _INACTIVE:
                msg = absorb_target(i, msg)
                prev = previous[i]
                if prev is None:
                    prev = previous[i] = deque()
                prev.append((msg, sender))
                if len(prev) == 1:
                    emit(i, nxt[i], T_SEARCH, msg)
                return True
            if st == _WAIT or st == _PASSIVE:
                leader_on_search(i, sender, msg)
                return True
            if st == _TERMINATED:
                msg = absorb_target(i, msg)
                initiator = msg[1]
                mphase = msg[2]
                if mphase > phase[i] or (
                    mphase == phase[i] and nrank[initiator] > nrank[i]
                ):
                    raise ProtocolError(
                        f"{ids[i]!r}: terminated leader outranked by search "
                        f"from {ids[initiator]!r} -- termination was unsound"
                    )
                emit(i, sender, T_RELEASE, (T_RELEASE, i, False, initiator, phase[i]))
                return True
            raise ProtocolError(
                f"{ids[i]!r}: search in impossible status {status_names[st]}"
            )

        def consume_own_release(i, msg):
            leader = msg[1]
            is_merge = msg[2]
            if status[i] == _WAIT and aw_rel[i]:
                aw_rel[i] = 0
                if not is_merge:
                    if leader == i:
                        explore(i)
                        return
                    absorb_learned_id(i, leader)
                    status[i] = _PASSIVE
                    return
                status[i] = _CONQUEROR
                aw_info[i] = 1
                emit(i, leader, T_MERGE_ACCEPT, WIRE_MERGE_ACCEPT)
                return
            st = status[i]
            if st == _PASSIVE or st == _CONQUERED or st == _INACTIVE:
                if is_merge:
                    emit(i, leader, T_MERGE_FAIL, WIRE_MERGE_FAIL)
                if expect_stale[i]:
                    expect_stale[i] = 0
                    absorb_learned_id(i, leader)
                return
            raise ProtocolError(
                f"{ids[i]!r}: own release ({MERGE if is_merge else ABORT}) in "
                f"status {status_names[st]} with awaiting_release={bool(aw_rel[i])}"
            )

        def h_release(i, sender, msg):
            if msg[3] == i:
                consume_own_release(i, msg)
                return True
            if status[i] != _INACTIVE:
                raise ProtocolError(
                    f"{ids[i]!r}: release for {ids[msg[3]]!r} in "
                    f"status {status_names[status[i]]}; only inactive nodes "
                    "route releases"
                )
            prev = previous[i]
            if not prev:
                raise ProtocolError(
                    f"{ids[i]!r}: release to route but previous queue empty"
                )
            _search, came_from = prev.popleft()
            if msg[4] >= phase[i]:
                nxt[i] = msg[1]
                phase[i] = msg[4]
            emit(i, came_from, T_RELEASE, msg)
            if prev:
                emit(i, nxt[i], T_SEARCH, prev[0][0])
            return True

        def h_merge_accept(i, sender, msg):
            if status[i] != _CONQUERED:
                raise ProtocolError(
                    f"{ids[i]!r}: merge-accept in status {status_names[status[i]]}"
                )
            nxt[i] = sender
            extra = len(more[i]) + len(done[i]) + len(unaware[i]) + len(unexp[i])
            emitx(
                i,
                sender,
                T_INFO,
                (
                    T_INFO,
                    phase[i],
                    frozenset(more[i]),
                    frozenset(done[i]),
                    frozenset(unaware[i]),
                    frozenset(unexp[i]),
                ),
                extra,
            )
            status[i] = _INACTIVE
            return True

        def h_merge_fail(i, sender, msg):
            if status[i] != _CONQUERED:
                raise ProtocolError(
                    f"{ids[i]!r}: merge-fail in status {status_names[status[i]]}"
                )
            status[i] = _PASSIVE
            return True

        def merge_with_unaware(i, msg):
            # Figure 6: absorb the conquered leader's state, then conquer.
            ua = unaware[i]
            ua |= msg[2] | msg[3] | msg[4]
            mo = more[i]
            dn = done[i]
            for u in msg[5]:
                if u not in ua and u not in mo and u not in dn and u != i:
                    add_unexplored(i, u)
            cluster = len(mo) + len(dn) + len(ua)
            if phase[i] == msg[1] or cluster >= 1 << (phase[i] + 1):
                phase[i] += 1
            cq = (T_CONQUER, i, phase[i])
            for w in rank_sorted(ua, rrank, by_rrank):
                emit(i, w, T_CONQUER, cq)
            if not ua:  # unreachable in practice: info.more holds the sender
                explore(i)

        def merge_direct(i, msg):
            # Section 4.5: the variants merge sets without the unaware stage.
            mo = more[i]
            dn = done[i]
            for w in msg[2]:
                # done -> more move and plain add collapse: _add_more is a
                # no-op for present members, discard for absent ones.
                dn.discard(w)
                add_more(i, w)
            for w in msg[3]:
                if w not in mo and w not in dn:
                    dn.add(w)
            for u in msg[5]:
                if u not in mo and u not in dn and u != i:
                    add_unexplored(i, u)
            cluster = len(mo) + len(dn)
            if phase[i] == msg[1] or cluster >= 1 << (phase[i] + 1):
                phase[i] += 1
            explore(i)

        def h_info(i, sender, msg):
            if status[i] != _CONQUEROR or not aw_info[i]:
                raise ProtocolError(
                    f"{ids[i]!r}: info in status {status_names[status[i]]}"
                )
            aw_info[i] = 0
            if variant[i] == _GENERIC:
                merge_with_unaware(i, msg)
            else:
                merge_direct(i, msg)
            return True

        def h_conquer(i, sender, msg):
            if status[i] != _INACTIVE:
                raise ProtocolError(
                    f"{ids[i]!r}: conquer in status {status_names[status[i]]}; "
                    "conquer messages only ever reach inactive nodes"
                )
            if msg[2] >= phase[i]:
                nxt[i] = msg[1]
                phase[i] = msg[2]
            emit(
                i,
                sender,
                T_MORE_DONE,
                WIRE_MORE_DONE_TRUE if local[i] else WIRE_MORE_DONE_FALSE,
            )
            return True

        def h_more_done(i, sender, msg):
            st = status[i]
            if st == _TERMINATED:
                return True
            if st != _CONQUEROR or aw_info[i]:
                raise ProtocolError(
                    f"{ids[i]!r}: more-done in status {status_names[st]}"
                )
            ua = unaware[i]
            if sender not in ua:
                raise ProtocolError(
                    f"{ids[i]!r}: more-done from {ids[sender]!r} not in unaware"
                )
            ua.discard(sender)
            if msg[1]:
                add_more(i, sender)
            else:
                done[i].add(sender)
            if not ua:
                explore(i)
            return True

        def h_probe(i, sender, msg):
            st = status[i]
            if msg[1] == i and st == _INACTIVE:
                emit(i, nxt[i], T_PROBE, msg)
                return True
            if is_leader[st]:
                knowledge = frozenset(more[i] | done[i] | unaware[i] | {i})
                emitx(
                    i,
                    sender,
                    T_PROBE_REPLY,
                    (T_PROBE_REPLY, i, knowledge, msg[1]),
                    len(knowledge),
                )
                return True
            if st == _INACTIVE:
                pq = probe_prev[i]
                if pq is None:
                    pq = probe_prev[i] = deque()
                pq.append((msg, sender))
                if len(pq) == 1:
                    emit(i, nxt[i], T_PROBE, msg)
                return True
            return False

        def h_probe_reply(i, sender, msg):
            if msg[3] == i:
                pr = presults[i]
                if pr is None:
                    pr = presults[i] = []
                pr.append((msg[1], msg[2]))
                probe_out[i] = 0
                return True
            if status[i] != _INACTIVE:
                raise ProtocolError(
                    f"{ids[i]!r}: probe-reply to route in status "
                    f"{status_names[status[i]]}"
                )
            pq = probe_prev[i]
            if not pq:
                raise ProtocolError(f"{ids[i]!r}: probe-reply but probe queue empty")
            _probe, came_from = pq.popleft()
            nxt[i] = msg[1]
            emitx(i, came_from, T_PROBE_REPLY, msg, len(msg[2]))
            if pq:
                emit(i, nxt[i], T_PROBE, pq[0][0])
            return True

        dispatch = [
            h_query,
            h_query_reply,
            h_search,
            h_release,
            h_merge_accept,
            h_merge_fail,
            h_info,
            h_conquer,
            h_more_done,
            h_probe,
            h_probe_reply,
        ]

        # -- inbox pump (deferral replay, Interpretation rule 1) ---------
        def pump(i):
            ib = inbox[i]
            df = deferred[i]
            while ib:
                sender, msg = ib.popleft()
                if not df:
                    if not dispatch[msg[0]](i, sender, msg):
                        if df is None:
                            df = deferred[i] = []
                        df.append((sender, msg))
                    continue
                before = (status[i], aw_rel[i], aw_query[i], aw_info[i])
                if not dispatch[msg[0]](i, sender, msg):
                    df.append((sender, msg))
                    continue
                if df and (status[i], aw_rel[i], aw_query[i], aw_info[i]) != before:
                    ib.extendleft(reversed(df))
                    df.clear()

        # -- the loop ----------------------------------------------------
        start_steps = self.steps
        steps = start_steps
        # ``executed >= limit`` becomes a single compare against the
        # absolute step count (one counter bump per iteration, not two).
        stop = start_steps + limit
        fifo = mode == _FIFO
        lifo = mode == _LIFO
        getrandbits = None
        if mode == _RANDOM:
            # Random._randbelow is a Python-level frame per draw; its body
            # is three lines over the C-level getrandbits, so inline it --
            # drawing the *identical* value sequence -- when the RNG is
            # exactly the stdlib Random (bound-method introspection; any
            # other callable keeps being called as-is).
            self_rng = getattr(randbelow, "__self__", None)
            if type(self_rng) is _Random and randbelow.__func__ is _RANDBELOW:
                getrandbits = self_rng.getrandbits
        # -- C loop engagement (DESIGN.md SS15) --------------------------
        # The compiled module runs the identical state machine over the
        # same columns; Python keeps the trace path, the probe and error
        # arms, and the limit policy.  The tiered-deopt protocol:
        #   code 0  pool drained              -> done
        #   code 1  counted step hit ``stop`` -> quiescent()/raise here
        #   code 2  head message not provably handleable; ``aux`` is the
        #           already-popped token      -> run one Python delivery
        #   code 3  pump hit an unhandleable inbox head; step counted
        #                                     -> ``pump(aux)`` here
        # ``cell`` carries the absolute step count across the boundary on
        # every exit, including handler exceptions.
        crun = None
        if trace_events is None and (fifo or lifo or getrandbits is not None):
            if (type(pool) is deque) if fifo else (type(pool) is list):
                cmod = _arrayloop.load()
                if cmod is not None:
                    crun = cmod.run
        if crun is not None:
            cell = [steps]
            cstop = stop if stop < _C_STOP_CAP else _C_STOP_CAP
        forced = None
        # The loop allocates only acyclic transients (tuples, flyweight
        # messages, deque cells), freed by refcounting alone -- but the
        # generational collector keeps re-scanning the n-sized column
        # arena looking for cycles that can't exist.  Pausing collection
        # for the duration is results-invariant and worth ~25% wall-clock
        # at n=10^6.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                if forced is not None:
                    token = forced
                    forced = None
                elif crun is not None:
                    cell[0] = steps
                    try:
                        code, aux = crun(
                            self, pool, pool_append, mode, getrandbits, cstop, cell
                        )
                    finally:
                        steps = cell[0]
                    if code == 0:
                        break
                    if code == 1:
                        if not quiescent():
                            raise StepLimitExceeded(limit_msg())
                        continue
                    if code == 3:
                        pump(aux)
                        if steps >= stop and not quiescent():
                            raise StepLimitExceeded(limit_msg())
                        continue
                    token = aux
                elif not pool:
                    break
                elif fifo:
                    token = pool.popleft()
                elif lifo:
                    token = pool.pop()
                else:
                    size = len(pool)
                    if getrandbits is not None:
                        k = size.bit_length()
                        index = getrandbits(k)
                        while index >= size:
                            index = getrandbits(k)
                    else:
                        index = randbelow(size)
                    token = pool[index]
                    pool[index] = pool[-1]
                    pool.pop()

                steps += 1
                if token >= 0:
                    msg = chanp[token]()
                    dst = chan_dst[token]
                    if not awake[dst]:
                        # Messages wake sleeping nodes (Section 1.2).
                        awake[dst] = 1
                        if trace_events is not None:
                            trace_events.append(
                                TraceEvent(steps, "wake", None, ids[dst], None)
                            )
                        explore(dst)
                    src = chan_src[token]
                    if trace_events is not None:
                        trace_events.append(
                            TraceEvent(
                                steps,
                                "deliver",
                                ids[src],
                                ids[dst],
                                MSG_TYPES[msg[0]],
                                _to_message(msg, ids),
                            )
                        )
                    # -- on_message, inlined ---------------------------
                    # Tag chain in workload frequency order.  Only search
                    # and probe can be deferred (``return False``); every
                    # other handler unconditionally consumes or raises, so
                    # the deferral bookkeeping drops off their path.
                    # Tag chain in workload frequency order, with the
                    # happy path of each hot handler inlined; the closure
                    # handlers (also used by ``pump``) stay the single
                    # source of every error path, so each inline branch
                    # falls back to them whenever a precondition fails.
                    tag = msg[0]
                    if deferred[dst] or inbox[dst]:
                        ib = inbox[dst]
                        if ib is None:
                            ib = inbox[dst] = deque()
                        ib.append((src, msg))
                        pump(dst)
                    elif tag == t_search:
                        st = status[dst]
                        if st == s_inactive:
                            # h_search, inactive routing arm.
                            if msg[3] == dst and msg[1] not in local[dst]:
                                local[dst].add(msg[1])
                                msg = (t_search, msg[1], msg[2], msg[3], True)
                            prev = previous[dst]
                            if prev is None:
                                prev = previous[dst] = deque()
                            prev.append((msg, src))
                            if len(prev) == 1:
                                emit(dst, nxt[dst], t_search, msg)
                        elif st == s_wait or st == s_passive:
                            leader_on_search(dst, src, msg)
                        elif st == s_explore or st == s_conquered or st == s_conqueror:
                            df = deferred[dst]
                            if df is None:
                                df = deferred[dst] = []
                            df.append((src, msg))
                        else:
                            h_search(dst, src, msg)
                    elif tag == t_release:
                        if msg[3] == dst:
                            consume_own_release(dst, msg)
                        elif status[dst] != s_inactive or not previous[dst]:
                            h_release(dst, src, msg)
                        else:
                            # h_release, routing arm.
                            prev = previous[dst]
                            came_from = prev.popleft()[1]
                            if msg[4] >= phase[dst]:
                                nxt[dst] = msg[1]
                                phase[dst] = msg[4]
                            emit(dst, came_from, t_release, msg)
                            if prev:
                                emit(dst, nxt[dst], t_search, prev[0][0])
                    elif tag == t_conquer:
                        if status[dst] != s_inactive:
                            h_conquer(dst, src, msg)
                        else:
                            if msg[2] >= phase[dst]:
                                nxt[dst] = msg[1]
                                phase[dst] = msg[2]
                            emit(
                                dst,
                                src,
                                t_more_done,
                                md_true if local[dst] else md_false,
                            )
                    elif tag == t_more_done:
                        st = status[dst]
                        if st == s_terminated:
                            pass
                        elif st != s_conqueror or aw_info[dst] or src not in unaware[dst]:
                            h_more_done(dst, src, msg)
                        else:
                            ua = unaware[dst]
                            ua.discard(src)
                            if msg[1]:
                                add_more(dst, src)
                            else:
                                done[dst].add(src)
                            if not ua:
                                explore(dst)
                    elif tag == t_query:
                        if status[dst] != s_inactive:
                            h_query(dst, src, msg)
                        else:
                            taken, done_flag = take_local(dst, msg[1])
                            emitx(
                                dst,
                                src,
                                t_query_reply,
                                (t_query_reply, taken, done_flag),
                                len(taken),
                            )
                    elif tag == t_query_reply:
                        if status[dst] != s_explore or aw_query[dst] != src:
                            h_query_reply(dst, src, msg)
                        else:
                            aw_query[dst] = -1
                            ingest_reply(dst, src, msg[1], msg[2])
                            explore(dst)
                    elif tag == t_probe:
                        if not h_probe(dst, src, msg):
                            df = deferred[dst]
                            if df is None:
                                df = deferred[dst] = []
                            df.append((src, msg))
                    else:
                        dispatch[tag](dst, src, msg)
                else:
                    node = -1 - token
                    if awake[node]:
                        if trace_events is not None:
                            trace_events.append(
                                TraceEvent(steps, "wake-noop", None, ids[node], None)
                            )
                    else:
                        awake[node] = 1
                        if trace_events is not None:
                            trace_events.append(
                                TraceEvent(steps, "wake", None, ids[node], None)
                            )
                        explore(node)
                        if inbox[node]:  # on_wake pumps; inbox is
                            pump(node)  # empty outside exceptional states

                if steps >= stop and not quiescent():
                    raise StepLimitExceeded(limit_msg())
        finally:
            if gc_was_enabled:
                gc.enable()
            self.steps_out = steps
            # Fold the deferred bit accounting: per-tag totals are fully
            # determined by send count and extra-id count, so the hot
            # path never touched ``bits``.  (Recomputed from totals, so
            # safe on any exit, including handler exceptions.)
            for tag in order:
                bits[tag] = counts[tag] * bases[tag] + xtra[tag] * idc
        return steps - start_steps


# ----------------------------------------------------------------------
# Simulator-backed engagement (fastcore seam)
# ----------------------------------------------------------------------
def _intern_space(sim, n: int) -> IdSpace:
    """Per-simulator cached :class:`IdSpace` (nodes are append-only, so a
    cached space is valid whenever the count still matches)."""
    space = getattr(sim, "_array_space", None)
    if space is not None and space.n == n:
        return space
    if getattr(sim, "_array_space_bad_n", -1) == n:
        raise _Ineligible("cached: id space ineligible at this node count")
    try:
        space = IdSpace(sim.nodes)
    except _Ineligible:
        sim._array_space_bad_n = n
        raise
    sim._array_space = space
    return space


def _build_from_sim(sim, pool):
    """Validate and build the columnar image of a live simulator.

    Pure read phase: raises :class:`_Ineligible` without having mutated
    the simulator, its nodes, channels or pool in any way.  Returns
    ``(core, new_pool, chan_pending)`` where ``new_pool`` is the int token
    list (in pool order) and ``chan_pending`` the per-channel wire
    contents to swap in at commit time.
    """
    nodes_map = sim.nodes
    n = len(nodes_map)
    space = _intern_space(sim, n)
    idx = space.index
    rrank = space.repr_rank
    core = ArrayCore(space, sim.id_bits, fill=False)
    core.steps = sim.steps

    status_codes = STATUS_CODES
    variant_codes = _VARIANT_CODES
    local_col = core.local
    nxt_col = core.nxt
    done_col = core.done
    more_col = core.more
    unaware_col = core.unaware
    unexp_col = core.unexp
    mheap_col = core.mheap
    uheap_col = core.uheap
    variant_col = core.variant
    csize_col = core.csize
    greedy_col = core.greedy
    shadow_free = _NODE_WRAPPABLE.isdisjoint
    try:
        for i, node in enumerate(nodes_map.values()):
            if type(node) is not DiscoveryNode:
                raise _Ineligible("non-stock node type")
            d = node.__dict__
            if not shadow_free(d):
                raise _Ineligible("node instance shadows a wrapped method")
            # Fresh-node fast path: the dominant workload converts a
            # just-built simulator (every node asleep with only its
            # ``local`` successors populated), where the full conversion
            # below is pure overhead.  The chain verifies freshness
            # outright, so hand-mutated nodes still take the general path.
            if (
                _FRESH_SCALARS(d) == _FRESH_STATE
                and not any(_FRESH_CONTAINERS(d))
                and len(d["more"]) == 1
                and node.node_id in d["more"]
                and d["next"] == node.node_id
            ):
                local_col[i] = {idx[x] for x in d["local"]}
                nxt_col[i] = i
                done_col[i] = set()
                more_col[i] = {i}
                unaware_col[i] = set()
                unexp_col[i] = set()
                mheap_col[i] = [rrank[i]]
                uheap_col[i] = []
                variant_col[i] = variant_codes[d["variant"]]
                csize_col[i] = d["component_size"]
                if d["greedy_queries"]:
                    greedy_col[i] = 1
                continue
            if node._restarted or node._rejoining or node._processing:
                raise _Ineligible("node carries recovery or reentrancy state")
            if node._inbox:
                raise _Ineligible("node inbox not drained")
            code = status_codes.get(node.status)
            if code is None:
                raise _Ineligible(f"unknown status {node.status!r}")
            core.status[i] = code
            core.awake[i] = 1 if node.awake else 0
            core.nxt[i] = idx[node.next]
            core.phase[i] = node.phase
            core.local[i] = {idx[x] for x in node.local}
            core.done[i] = {idx[x] for x in node.done}
            more = {idx[x] for x in node.more}
            core.more[i] = more
            core.unaware[i] = {idx[x] for x in node.unaware}
            unexplored = {idx[x] for x in node.unexplored}
            core.unexp[i] = unexplored
            # A sorted list is a valid heap; rebuilding from the *live*
            # members drops stale heap entries, which the object path
            # skips lazily on pop anyway -- same pop sequence either way.
            core.mheap[i] = sorted(rrank[w] for w in more)
            core.uheap[i] = sorted(rrank[u] for u in unexplored)
            core.aw_rel[i] = 1 if node._awaiting_release else 0
            aw_q = node._awaiting_query_from
            core.aw_query[i] = -1 if aw_q is None else idx[aw_q]
            core.aw_info[i] = 1 if node._awaiting_info else 0
            core.expect_stale[i] = 1 if node._expect_stale_release else 0
            core.probe_out[i] = 1 if node._probe_outstanding else 0
            if node.previous:
                core.previous[i] = deque(
                    (_to_wire(m, idx), idx[s]) for m, s in node.previous
                )
            if node.probe_previous:
                core.probe_prev[i] = deque(
                    (_to_wire(m, idx), idx[s]) for m, s in node.probe_previous
                )
            if node._deferred:
                core.deferred[i] = [
                    (idx[s], _to_wire(m, idx)) for s, m in node._deferred
                ]
            core.variant[i] = variant_codes[node.variant]
            core.csize[i] = node.component_size
            core.greedy[i] = 1 if node.greedy_queries else 0

        # -- channels: intern every existing pair, reusing its deque -----
        chanq = core.chanq
        chana = core.chana
        chanp = core.chanp
        chan_src = core.chan_src
        chan_dst = core.chan_dst
        out = core.out
        chan_pending = []
        for (src, dst), queue in sim._channels.items():
            si = idx[src]
            di = idx[dst]
            d = out[si]
            if d is None:
                d = out[si] = {}
            d[di] = len(chanq)
            chanq.append(queue)
            chana.append(queue.append)
            chanp.append(queue.popleft)
            chan_src.append(si)
            chan_dst.append(di)
            if queue:
                chan_pending.append((queue, [_to_wire(m, idx) for m in queue]))

        # -- pool: wake and deliver tokens only --------------------------
        new_pool = []
        append = new_pool.append
        for token in pool:
            tcls = type(token)
            if tcls is WakeToken:
                append(-1 - idx[token.node])
            elif tcls is DeliverToken:
                append(out[idx[token.src]][idx[token.dst]])
            else:
                raise _Ineligible(f"pool holds a {tcls.__name__}")
    except KeyError as exc:
        raise _Ineligible(f"state references unknown id {exc}")
    except TypeError as exc:
        raise _Ineligible(f"uninternable state: {exc}")

    core.base_channels = len(chanq)
    return core, new_pool, chan_pending


def _materialize_to_sim(core: ArrayCore, sim, pool, mode) -> None:
    """Write the columnar state back onto the live objects.

    Runs on *every* exit (quiescence, step limit, handler exception); the
    simulator afterwards is indistinguishable from one the object path
    left behind, so resumed runs, result collection and diagnostics all
    behave identically.
    """
    ids = core.ids
    nodes_map = sim.nodes
    status_names = STATUS_NAMES
    heapify = heapq.heapify
    new_deque = deque
    status_col = core.status
    awake_col = core.awake
    nxt_col = core.nxt
    phase_col = core.phase
    local_col = core.local
    done_col = core.done
    more_col = core.more
    unaware_col = core.unaware
    unexp_col = core.unexp
    aw_rel_col = core.aw_rel
    aw_query_col = core.aw_query
    aw_info_col = core.aw_info
    expect_stale_col = core.expect_stale
    probe_out_col = core.probe_out
    previous_col = core.previous
    probe_prev_col = core.probe_prev
    inbox_col = core.inbox
    deferred_col = core.deferred
    presults_col = core.presults

    def to_message(msg):
        return _to_message(msg, ids)

    for i, node in enumerate(nodes_map.values()):
        d = node.__dict__
        d["status"] = status_names[status_col[i]]
        d["awake"] = awake_col[i] != 0
        d["next"] = ids[nxt_col[i]]
        d["phase"] = phase_col[i]
        d["local"] = {ids[x] for x in local_col[i]}
        d["done"] = {ids[x] for x in done_col[i]}
        more = {ids[x] for x in more_col[i]}
        d["more"] = more
        d["unaware"] = {ids[x] for x in unaware_col[i]}
        unexplored = {ids[x] for x in unexp_col[i]}
        d["unexplored"] = unexplored
        # Rebuild (repr, id) heaps from live members (see _build_from_sim).
        more_heap = [(repr(w), w) for w in more]
        heapify(more_heap)
        d["_more_heap"] = more_heap
        unexp_heap = [(repr(u), u) for u in unexplored]
        heapify(unexp_heap)
        d["_unexplored_heap"] = unexp_heap
        d["_awaiting_release"] = aw_rel_col[i] != 0
        aw_q = aw_query_col[i]
        d["_awaiting_query_from"] = None if aw_q < 0 else ids[aw_q]
        d["_awaiting_info"] = aw_info_col[i] != 0
        d["_expect_stale_release"] = expect_stale_col[i] != 0
        d["_probe_outstanding"] = probe_out_col[i] != 0
        prev = previous_col[i]
        d["previous"] = (
            new_deque((to_message(m), ids[s]) for m, s in prev)
            if prev
            else new_deque()
        )
        pq = probe_prev_col[i]
        d["probe_previous"] = (
            new_deque((to_message(m), ids[s]) for m, s in pq) if pq else new_deque()
        )
        ib = inbox_col[i]
        d["_inbox"] = (
            new_deque((ids[s], to_message(m)) for s, m in ib) if ib else new_deque()
        )
        df = deferred_col[i]
        d["_deferred"] = [(ids[s], to_message(m)) for s, m in df] if df else []
        pr = presults_col[i]
        if pr:
            node.probe_results.extend(
                (ids[leader], frozenset(ids[x] for x in id_set))
                for leader, id_set in pr
            )

    # Channels created mid-run exist only in the core's arena; register
    # them on the simulator in creation order (matching the insertion
    # order the per-send path would have produced).
    chanq = core.chanq
    if len(chanq) > core.base_channels:
        channels = sim._channels
        src_col = core.chan_src
        dst_col = core.chan_dst
        for cid in range(core.base_channels, len(chanq)):
            channels[(ids[src_col[cid]], ids[dst_col[cid]])] = chanq[cid]

    # Channels: wire tuples -> message objects, in place (deque identity
    # is shared with sim._channels and the PR6 interning registry).
    for queue in chanq:
        if queue:
            materialized = [to_message(m) for m in queue]
            queue.clear()
            queue.extend(materialized)

    # Pool: ints -> tokens, preserving order.
    chan_src = core.chan_src
    chan_dst = core.chan_dst
    if pool:
        items = [
            WakeToken(ids[-1 - token])
            if token < 0
            else DeliverToken(ids[chan_src[token]], ids[chan_dst[token]])
            for token in pool
        ]
        if mode == _FIFO:
            pool.clear()
            pool.extend(items)
        else:
            pool[:] = items

    sim.steps = core.steps_out
    sim.stats.record_indexed(MSG_TYPES, core.counts, core.bits, core.order)


def maybe_run_array(sim, max_steps, pool, mode, randbelow) -> Optional[int]:
    """Try to run ``sim`` on the array core; ``None`` means "not engaged".

    Called from :func:`repro.sim.fastcore.run_fast` once ``eligible(sim)``
    holds.  Validates, converts, runs and materializes; on any eligibility
    miss the simulator is untouched and the caller's object loop proceeds.
    """
    n = len(sim.nodes)
    if n == 0 or _MIN_POOL_FACTOR * len(pool) < n:
        return None
    if not behavior_is_pristine():
        # A class-level monkeypatch (the finding-regression tests replace
        # DiscoveryNode methods to reproduce bugs) must keep taking
        # effect; the inlined state machine cannot honour it.
        return None
    try:
        core, new_pool, chan_pending = _build_from_sim(sim, pool)
    except _Ineligible:
        return None

    # -- commit point: from here on every exit materializes --------------
    for queue, wires in chan_pending:
        queue.clear()
        queue.extend(wires)
    if mode == _FIFO:
        pool.clear()
        pool.extend(new_pool)
    else:
        pool[:] = new_pool
    sim._last_run_path = "array"

    trace = sim.trace
    trace_events = trace.events if trace is not None else None
    limit = maxsize if max_steps is None else max_steps

    def quiescent():
        return sim.is_quiescent

    def limit_msg():
        # Summed over the channel arena, not sim.in_flight(): channels
        # created mid-run are registered on the simulator only at
        # materialization, but their pending messages are in flight now
        # (this is the count the legacy path would report).
        in_flight = sum(len(q) for q in core.chanq)
        return (
            f"no quiescence within {max_steps} steps; "
            f"{in_flight} messages still in flight"
        )

    try:
        executed = core.run_loop(
            pool, mode, randbelow, limit, trace_events, quiescent, limit_msg
        )
    finally:
        _materialize_to_sim(core, sim, pool, mode)
    return executed


# ----------------------------------------------------------------------
# Graph-backed driver (the million-node path)
# ----------------------------------------------------------------------
@dataclass
class ScaleResult:
    """Summary of a :func:`run_graph` execution (per-node state stays in
    the core; at n=10^6 a per-node result dict would dwarf the run)."""

    variant: str
    n: int
    steps: int
    stats: MessageStats
    n_components: int
    leaders: List[Hashable]
    verified: bool

    @property
    def total_messages(self) -> int:
        return self.stats.total_messages

    @property
    def total_bits(self) -> int:
        return self.stats.total_bits


def _graph_components(graph, idx, n: int) -> List[List[int]]:
    """Weakly connected components over int ids (union-find, O(E a(n)))."""
    parent = list(range(n))

    def find(x):
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for u in graph.nodes:
        ui = idx[u]
        for v in graph.successors(u):
            ru = find(ui)
            rv = find(idx[v])
            if ru != rv:
                parent[ru] = rv
    components: Dict[int, List[int]] = {}
    for i in range(n):
        components.setdefault(find(i), []).append(i)
    return list(components.values())


def _verify_scale(core: ArrayCore, graph, variant: str) -> int:
    """O(n + E) check of properties (1)-(3)/(3a,3b) plus steady state.

    The cheap mirror of :func:`repro.verification.invariants.verify_discovery`
    (which wants a per-node ``DiscoveryResult`` -- exactly the object
    blow-up this driver exists to avoid).  Returns the component count.
    """
    n = core.n
    status = core.status
    components = _graph_components(graph, core.idx, n)

    for i in range(n):
        name = STATUS_NAMES[status[i]]
        if name in ("passive", "conquered", "asleep", "explore"):
            raise SimulationError(
                f"node {core.ids[i]!r} stuck in transient state {name!r} "
                "at quiescence"
            )

    comp_of = [0] * n
    for ci, members in enumerate(components):
        for m in members:
            comp_of[m] = ci
    leader_of_comp: List[Optional[int]] = [None] * len(components)
    for i in range(n):
        if IS_LEADER[status[i]]:
            ci = comp_of[i]
            if leader_of_comp[ci] is not None:
                raise SimulationError(
                    f"component of {core.ids[i]!r} has two leaders"
                )
            leader_of_comp[ci] = i
    for ci, members in enumerate(components):
        leader = leader_of_comp[ci]
        if leader is None:
            raise SimulationError(
                f"component of {core.ids[members[0]]!r} has no leader"
            )
        if variant == "bounded" and status[leader] != _TERMINATED:
            raise SimulationError(
                f"bounded leader {core.ids[leader]!r} did not terminate"
            )
        knowledge = core.more[leader] | core.done[leader] | core.unaware[leader]
        knowledge.add(leader)
        if knowledge != set(members):
            raise SimulationError(
                f"leader {core.ids[leader]!r}: knowledge != component "
                f"({len(knowledge)} vs {len(members)} ids)"
            )

    nxt = core.nxt
    if variant == "adhoc":
        # Properties 3a/3b: next-pointer chains are directed paths to the
        # component leader.  Memoized walk, amortized O(n).
        reach = [-1] * n
        stack: List[int] = []
        for i in range(n):
            j = i
            while reach[j] < 0 and not IS_LEADER[status[j]]:
                stack.append(j)
                j = nxt[j]
                if len(stack) > n:
                    raise SimulationError("adhoc next pointers form a cycle")
            root = reach[j] if reach[j] >= 0 else j
            while stack:
                reach[stack.pop()] = root
            reach[i] = root
            if root != leader_of_comp[comp_of[i]]:
                raise SimulationError(
                    f"node {core.ids[i]!r} does not reach its component leader"
                )
    else:
        # Strict property 3: non-leaders point directly at the leader.
        for i in range(n):
            if not IS_LEADER[status[i]] and nxt[i] != leader_of_comp[comp_of[i]]:
                raise SimulationError(
                    f"node {core.ids[i]!r} does not point at its leader"
                )
    return len(components)


def run_graph(
    graph,
    variant: str = "generic",
    *,
    seed: Optional[int] = None,
    max_steps: Optional[int] = None,
    greedy_queries: bool = False,
    verify: bool = True,
) -> ScaleResult:
    """Run discovery straight off a graph with no per-node objects.

    The million-node driver: builds the columnar state directly (a
    million ``DiscoveryNode`` objects cost ~4 GB before the first
    message; the columns cost ~100 MB), schedules one wake per node in
    graph order, and runs the same array engine the simulator path uses.
    ``seed`` selects the seeded random scheduler with *identical*
    semantics to ``build_simulation(seed=...)`` -- the differential test
    pins equal step counts, stats and leaders at small n -- and ``None``
    is global-FIFO, also matching.
    """
    from repro.core.runner import default_step_budget, id_bits_for

    if variant not in VARIANTS:
        raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
    ids = list(graph.nodes)
    n = len(ids)
    if n == 0:
        raise ValueError("run_graph needs a non-empty graph")
    try:
        space = IdSpace(ids)
    except _Ineligible as exc:
        raise SimulationError(f"graph ids not array-eligible: {exc}")
    idx = space.index
    core = ArrayCore(space, id_bits_for(n), fill=True)
    for i, node_id in enumerate(ids):
        successors = {idx[x] for x in graph.successors(node_id)}
        successors.discard(i)
        core.local[i] = successors
    if greedy_queries:
        core.greedy = bytearray(b"\x01" * n)
    if variant == "bounded":
        for members in _graph_components(graph, idx, n):
            size = len(members)
            for m in members:
                core.csize[m] = size
        core.variant = bytearray([_BOUNDED]) * n
    elif variant == "adhoc":
        core.variant = bytearray([_ADHOC]) * n

    chanq = core.chanq
    wake_tokens = [-1 - i for i in range(n)]
    if seed is None:
        mode = _FIFO
        pool = deque(wake_tokens)
        randbelow = None
    else:
        mode = _RANDOM
        pool = wake_tokens
        rng = _Random(seed)
        # Same internal draw the stock RandomScheduler (and fastcore's
        # inlined pop) uses, so seeded runs replay identically.
        randbelow = getattr(rng, "_randbelow", None) or rng.randrange

    limit = max_steps if max_steps is not None else default_step_budget(graph)

    def quiescent():
        return not pool

    def limit_msg():
        in_flight = sum(len(q) for q in chanq)
        return (
            f"no quiescence within {limit} steps; "
            f"{in_flight} messages still in flight"
        )

    executed = core.run_loop(pool, mode, randbelow, limit, None, quiescent, limit_msg)

    stats = MessageStats()
    stats.record_indexed(MSG_TYPES, core.counts, core.bits, core.order)
    leaders = [core.ids[i] for i in range(n) if IS_LEADER[core.status[i]]]
    if verify:
        n_components = _verify_scale(core, graph, variant)
        verified = True
    else:
        n_components = len(_graph_components(graph, idx, n))
        verified = False
    return ScaleResult(
        variant=variant,
        n=n,
        steps=executed,
        stats=stats,
        n_components=n_components,
        leaders=leaders,
        verified=verified,
    )
