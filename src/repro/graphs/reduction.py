"""The Union-Find -> Ad-hoc Resource Discovery reduction (Lemma 3.1).

Given a universe of ``n`` singleton sets and a schedule ``U`` of union and
find operations, Lemma 3.1 compiles a knowledge graph ``G``:

* one node ``s_i`` per set ``S_i``;
* one node ``u_{i,j}`` per operation ``U(i, j)``, with edges
  ``u_{i,j} -> s_i`` and ``u_{i,j} -> s_j``;
* one node ``f_i`` per operation ``F(i)``, with edge ``f_i -> s_i``;

together with the *sequential wake-up schedule*: wake the operation node of
the first operation, run the discovery algorithm to quiescence, wake the
next, and so on (set nodes are woken by the messages that reach them).

Driving the Ad-hoc algorithm through this schedule simulates the Union-Find
sequence, which is how the paper transfers Tarjan's ``Omega(n alpha(n, n))``
pointer-machine lower bound to message complexity (Theorem 2).

This module builds the graph and schedule; the driver that actually runs the
discovery algorithm operation-by-operation lives in
:mod:`repro.lowerbounds.unionfind_reduction`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from repro.graphs.knowledge_graph import KnowledgeGraph

__all__ = [
    "UnionOp",
    "FindOp",
    "Operation",
    "ReductionGraph",
    "build_reduction_graph",
    "random_schedule",
    "binomial_merge_schedule",
    "interleaved_find_schedule",
]


@dataclass(frozen=True)
class UnionOp:
    """``U(i, j)``: unite the sets currently containing ``S_i`` and ``S_j``.

    The paper assumes the two sets are disjoint prior to the operation;
    schedule generators maintain that invariant.
    """

    i: int
    j: int


@dataclass(frozen=True)
class FindOp:
    """``F(i)``: find the representative of the set containing ``S_i``."""

    i: int


Operation = Union[UnionOp, FindOp]


@dataclass
class ReductionGraph:
    """The compiled knowledge graph plus its wake-up schedule.

    Attributes
    ----------
    graph:
        The knowledge graph of Lemma 3.1.
    wake_schedule:
        Operation-node ids in the order they must be woken, one per
        operation in the source schedule.
    set_nodes:
        ``set_nodes[i]`` is the graph id of ``s_i``.
    operations:
        The source operation sequence, aligned with ``wake_schedule``.
    """

    graph: KnowledgeGraph
    wake_schedule: List[str]
    set_nodes: List[str]
    operations: List[Operation]

    @property
    def n_sets(self) -> int:
        return len(self.set_nodes)


def build_reduction_graph(n_sets: int, operations: Sequence[Operation]) -> ReductionGraph:
    """Compile ``operations`` over ``n_sets`` singletons into a knowledge graph.

    Node ids are strings: ``"s<i>"`` for set nodes, ``"u<i>_<j>@<k>"`` for
    the union node of the k-th operation, ``"f<i>@<k>"`` for find nodes.
    Strings are mutually orderable, which is all the protocols need.
    """
    if n_sets < 1:
        raise ValueError(f"n_sets must be >= 1, got {n_sets}")
    set_nodes = [f"s{i}" for i in range(n_sets)]
    nodes: List[str] = list(set_nodes)
    edges: List[Tuple[str, str]] = []
    wake_schedule: List[str] = []
    n_unions = 0
    for k, op in enumerate(operations):
        if isinstance(op, UnionOp):
            _check_index(op.i, n_sets)
            _check_index(op.j, n_sets)
            if op.i == op.j:
                raise ValueError(f"operation {k}: union of a set with itself")
            n_unions += 1
            node = f"u{op.i}_{op.j}@{k}"
            nodes.append(node)
            edges.append((node, set_nodes[op.i]))
            edges.append((node, set_nodes[op.j]))
        elif isinstance(op, FindOp):
            _check_index(op.i, n_sets)
            node = f"f{op.i}@{k}"
            nodes.append(node)
            edges.append((node, set_nodes[op.i]))
        else:
            raise TypeError(f"operation {k}: expected UnionOp or FindOp, got {op!r}")
        wake_schedule.append(node)
    if n_unions > n_sets - 1:
        raise ValueError(
            f"{n_unions} unions over {n_sets} sets cannot all merge disjoint sets"
        )
    return ReductionGraph(
        graph=KnowledgeGraph(nodes, edges),
        wake_schedule=wake_schedule,
        set_nodes=set_nodes,
        operations=list(operations),
    )


def random_schedule(
    n_sets: int,
    n_finds: int,
    seed: int = 0,
    *,
    full_merge: bool = True,
) -> List[Operation]:
    """A random valid schedule: ``n_sets - 1`` unions interleaved with finds.

    Unions always merge two currently-distinct sets (tracked with a scratch
    quick-find), so the compiled graph satisfies Lemma 3.1's disjointness
    assumption.  With ``full_merge`` the final structure is a single set.
    """
    rng = random.Random(seed)
    labels = list(range(n_sets))  # quick-find scratch labels

    def representative(i: int) -> int:
        return labels[i]

    remaining_unions = n_sets - 1 if full_merge else max(0, (n_sets - 1) // 2)
    ops: List[Operation] = []
    pending = [("u", None)] * remaining_unions + [("f", None)] * n_finds
    rng.shuffle(pending)
    # Unions must come while >= 2 sets remain; a shuffled schedule already
    # guarantees that because we schedule exactly n_sets - 1 of them.
    for kind, _ in pending:
        if kind == "f":
            ops.append(FindOp(rng.randrange(n_sets)))
            continue
        # Pick representatives of two distinct current sets.
        i = rng.randrange(n_sets)
        j = rng.randrange(n_sets)
        while representative(i) == representative(j):
            j = rng.randrange(n_sets)
        ops.append(UnionOp(i, j))
        old, new = representative(i), representative(j)
        for k in range(n_sets):
            if labels[k] == old:
                labels[k] = new
    return ops


def binomial_merge_schedule(n_sets: int, finds_per_round: int = 1, seed: int = 0) -> List[Operation]:
    """Balanced binomial-tree merging with interleaved finds.

    Merges pairs, then pairs of pairs, and so on (the structure underlying
    the hard instances of Tarjan's lower bound), with ``finds_per_round``
    finds on random deep elements after each round.  ``n_sets`` is rounded
    down to a power of two.
    """
    if n_sets < 2:
        raise ValueError(f"n_sets must be >= 2, got {n_sets}")
    size = 1 << (n_sets.bit_length() - 1)
    rng = random.Random(seed)
    ops: List[Operation] = []
    stride = 1
    while stride < size:
        for base in range(0, size, 2 * stride):
            ops.append(UnionOp(base, base + stride))
        for _ in range(finds_per_round):
            ops.append(FindOp(rng.randrange(size)))
        stride *= 2
    return ops


def interleaved_find_schedule(n_sets: int, finds_per_union: int, seed: int = 0) -> List[Operation]:
    """A sequential chain of unions with ``finds_per_union`` finds after each.

    Produces long find paths when run without compression; useful for
    exercising the path-compression behaviour of ``release`` messages.
    """
    if n_sets < 2:
        raise ValueError(f"n_sets must be >= 2, got {n_sets}")
    rng = random.Random(seed)
    ops: List[Operation] = []
    for i in range(1, n_sets):
        ops.append(UnionOp(i - 1, i))
        for _ in range(finds_per_union):
            ops.append(FindOp(rng.randrange(i + 1)))
    return ops


def _check_index(i: int, n_sets: int) -> None:
    if not 0 <= i < n_sets:
        raise ValueError(f"set index {i} out of range [0, {n_sets})")
