"""Reading and writing knowledge graphs.

Two formats:

* **edge list** (``.edges``, plain text): one ``u v`` pair per line,
  ``#`` comments, and optional bare ``u`` lines declaring isolated nodes.
  Ids are read as integers when every token parses as one, as strings
  otherwise (mixing would break the protocols' id comparisons).
* **JSON** (``.json``): ``{"nodes": [...], "edges": [[u, v], ...]}`` --
  lossless for any JSON-representable ids.

Used by the CLI's ``--graph-file`` and handy for pinning regression
topologies in tests.
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Tuple, Union

from repro.graphs.knowledge_graph import KnowledgeGraph

PathLike = Union[str, pathlib.Path]

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_json",
    "read_json",
    "load_graph",
    "save_graph",
]


def write_edge_list(graph: KnowledgeGraph, path: PathLike) -> None:
    """Write ``graph`` as a plain-text edge list."""
    path = pathlib.Path(path)
    lines = [f"# knowledge graph: n={graph.n} m={graph.n_edges}"]
    with_edges = set()
    for u, v in graph.edges():
        lines.append(f"{u} {v}")
        with_edges.add(u)
        with_edges.add(v)
    for node in graph.nodes:
        if node not in with_edges:
            lines.append(f"{node}")
    path.write_text("\n".join(lines) + "\n")


def read_edge_list(path: PathLike) -> KnowledgeGraph:
    """Parse a plain-text edge list written by :func:`write_edge_list`
    (or by hand)."""
    path = pathlib.Path(path)
    raw_nodes: List[str] = []
    raw_edges: List[Tuple[str, str]] = []
    seen = set()

    def note(token: str) -> None:
        if token not in seen:
            seen.add(token)
            raw_nodes.append(token)

    for line_no, line in enumerate(path.read_text().splitlines(), start=1):
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        parts = stripped.split()
        if len(parts) == 1:
            note(parts[0])
        elif len(parts) == 2:
            note(parts[0])
            note(parts[1])
            raw_edges.append((parts[0], parts[1]))
        else:
            raise ValueError(f"{path}:{line_no}: expected 'u v' or 'u', got {line!r}")

    if all(_is_int(token) for token in raw_nodes):
        convert = int
    else:
        convert = str
    nodes = [convert(token) for token in raw_nodes]
    edges = [(convert(u), convert(v)) for u, v in raw_edges]
    return KnowledgeGraph(nodes, edges)


def _is_int(token: str) -> bool:
    try:
        int(token)
    except ValueError:
        return False
    return True


def write_json(graph: KnowledgeGraph, path: PathLike) -> None:
    """Write ``graph`` as ``{"nodes": [...], "edges": [[u, v], ...]}``."""
    payload = {
        "nodes": graph.nodes,
        "edges": [[u, v] for u, v in graph.edges()],
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=1))


def read_json(path: PathLike) -> KnowledgeGraph:
    """Read a JSON graph written by :func:`write_json`."""
    payload = json.loads(pathlib.Path(path).read_text())
    if not isinstance(payload, dict) or "nodes" not in payload:
        raise ValueError(f"{path}: expected an object with 'nodes' and 'edges'")
    edges = payload.get("edges", [])
    # JSON arrays arrive as lists; node ids must be hashable as-is.
    return KnowledgeGraph(payload["nodes"], (tuple(edge) for edge in edges))


def save_graph(graph: KnowledgeGraph, path: PathLike) -> None:
    """Dispatch on extension: ``.json`` or edge list otherwise."""
    if str(path).endswith(".json"):
        write_json(graph, path)
    else:
        write_edge_list(graph, path)


def load_graph(path: PathLike) -> KnowledgeGraph:
    """Dispatch on extension: ``.json`` or edge list otherwise."""
    if str(path).endswith(".json"):
        return read_json(path)
    return read_edge_list(path)
