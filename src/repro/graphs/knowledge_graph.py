"""The knowledge-graph model of the paper (Section 1).

A *knowledge graph* is a directed graph ``G = (V, E)`` over nodes with
unique ids, where an edge ``(u -> v)`` records that ``u`` knows ``v``'s id
(think: IP address) and may therefore send it messages.  The edge set only
ever grows: whenever a node receives an id it did not know, the
corresponding edge is added.

This module holds the *initial* graph ``(V, E0)`` handed to the algorithms;
the dynamic knowledge accumulated during a protocol run lives in the
protocol nodes themselves (``local``/``more``/``done``/... sets), not here.

Node ids may be any hashable, totally orderable values; the algorithms
compare ids to break ties exactly as the paper's ``(phase, id)``
lexicographic rule requires.  Integers are the common case and what the
generators produce.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

NodeId = Hashable

__all__ = ["KnowledgeGraph", "NodeId"]


class KnowledgeGraph:
    """An immutable-by-convention directed knowledge graph ``(V, E0)``.

    Parameters
    ----------
    nodes:
        Iterable of node ids.  Ids must be unique and mutually orderable.
    edges:
        Iterable of ``(u, v)`` pairs meaning *u initially knows v*.
        Self-loops are ignored (a node trivially knows itself); endpoints
        must be in ``nodes``.
    """

    def __init__(
        self,
        nodes: Iterable[NodeId],
        edges: Iterable[Tuple[NodeId, NodeId]] = (),
    ) -> None:
        self._nodes: List[NodeId] = []
        seen: Set[NodeId] = set()
        for node in nodes:
            if node in seen:
                raise ValueError(f"duplicate node id {node!r}")
            seen.add(node)
            self._nodes.append(node)
        self._succ: Dict[NodeId, Set[NodeId]] = {node: set() for node in self._nodes}
        self._pred: Dict[NodeId, Set[NodeId]] = {node: set() for node in self._nodes}
        self._n_edges = 0
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Add an isolated node (used by the dynamic-additions machinery)."""
        if node in self._succ:
            raise ValueError(f"duplicate node id {node!r}")
        self._nodes.append(node)
        self._succ[node] = set()
        self._pred[node] = set()

    def add_edge(self, u: NodeId, v: NodeId) -> bool:
        """Add the knowledge edge ``u -> v``; return ``True`` if new.

        Self-loops are silently dropped, matching the model (every node
        knows its own id; the papers' ``E`` never contains self-loops).
        """
        if u not in self._succ:
            raise KeyError(f"unknown node {u!r}")
        if v not in self._succ:
            raise KeyError(f"unknown node {v!r}")
        if u == v or v in self._succ[u]:
            return False
        self._succ[u].add(v)
        self._pred[v].add(u)
        self._n_edges += 1
        return True

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[NodeId]:
        """Node ids in insertion order (a copy)."""
        return list(self._nodes)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def n_edges(self) -> int:
        """Number of directed edges in ``E0``."""
        return self._n_edges

    def edges(self) -> Iterator[Tuple[NodeId, NodeId]]:
        """Iterate over directed edges in a deterministic order."""
        for u in self._nodes:
            for v in sorted(self._succ[u], key=repr):
                yield (u, v)

    def successors(self, node: NodeId) -> FrozenSet[NodeId]:
        """Ids initially known to ``node`` (its initial ``local`` set)."""
        return frozenset(self._succ[node])

    def predecessors(self, node: NodeId) -> FrozenSet[NodeId]:
        """Nodes that initially know ``node``."""
        return frozenset(self._pred[node])

    def out_degree(self, node: NodeId) -> int:
        return len(self._succ[node])

    def in_degree(self, node: NodeId) -> int:
        return len(self._pred[node])

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return u in self._succ and v in self._succ[u]

    def __contains__(self, node: NodeId) -> bool:
        return node in self._succ

    def __repr__(self) -> str:
        return f"KnowledgeGraph(n={self.n}, m={self.n_edges})"

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "KnowledgeGraph":
        """Return an independent copy."""
        return KnowledgeGraph(self._nodes, ((u, v) for u, v in self.edges()))

    def reversed(self) -> "KnowledgeGraph":
        """Return the graph with every edge direction flipped."""
        return KnowledgeGraph(self._nodes, ((v, u) for u, v in self.edges()))

    def undirected_neighbors(self, node: NodeId) -> Set[NodeId]:
        """Neighbours ignoring edge direction (for weak connectivity)."""
        return set(self._succ[node]) | set(self._pred[node])
