"""Knowledge-graph generators for the experiment suite.

Each generator returns a :class:`~repro.graphs.knowledge_graph.KnowledgeGraph`
whose node ids are the integers ``0..n-1`` (ids double as tie-breakers in the
protocols, so distinct integers are exactly what the model wants).  All
randomized generators take an explicit ``seed`` and are deterministic given
it.

The families cover the regimes the paper's analysis distinguishes:

* sparse weakly connected graphs (``|E0| = O(n)``): stars, paths, trees,
  random arborescences -- where even the trivial algorithm is optimal;
* non-sparse weakly connected graphs (``|E0| = Omega(n log n)``): dense
  Erdős–Rényi and layered graphs -- "the algorithmic challenge" (Section 1);
* the lower-bound topology: complete binary trees with edges directed toward
  the leaves (Theorem 1);
* strongly connected graphs for the Section 1 observation (EXP-13).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.graphs.knowledge_graph import KnowledgeGraph

__all__ = [
    "grid",
    "community_graph",
    "star",
    "inverted_star",
    "directed_path",
    "directed_cycle",
    "complete_binary_tree",
    "random_arborescence",
    "erdos_renyi",
    "dense_layered",
    "preferential_attachment",
    "random_weakly_connected",
    "random_strongly_connected",
    "complete_graph",
    "disjoint_union",
]


def star(n: int) -> KnowledgeGraph:
    """Node 0 knows everybody: edges ``0 -> i`` for all ``i > 0``."""
    _require_positive(n)
    return KnowledgeGraph(range(n), ((0, i) for i in range(1, n)))


def inverted_star(n: int) -> KnowledgeGraph:
    """Everybody knows node 0: edges ``i -> 0`` for all ``i > 0``."""
    _require_positive(n)
    return KnowledgeGraph(range(n), ((i, 0) for i in range(1, n)))


def directed_path(n: int) -> KnowledgeGraph:
    """A directed path ``0 -> 1 -> ... -> n-1``."""
    _require_positive(n)
    return KnowledgeGraph(range(n), ((i, i + 1) for i in range(n - 1)))


def directed_cycle(n: int) -> KnowledgeGraph:
    """A directed cycle; the smallest strongly connected family."""
    _require_positive(n)
    if n == 1:
        return KnowledgeGraph([0])
    return KnowledgeGraph(range(n), ((i, (i + 1) % n) for i in range(n)))


def complete_binary_tree(height: int) -> KnowledgeGraph:
    """The Theorem 1 topology ``T(i)``: a complete rooted binary tree with
    ``n = 2**height - 1`` nodes and all edges directed toward the leaves.

    Nodes use heap numbering: the root is 0 and node ``k`` has children
    ``2k+1`` and ``2k+2``.
    """
    if height < 1:
        raise ValueError(f"height must be >= 1, got {height}")
    n = 2**height - 1
    edges = []
    for k in range(n):
        for child in (2 * k + 1, 2 * k + 2):
            if child < n:
                edges.append((k, child))
    return KnowledgeGraph(range(n), edges)


def random_arborescence(n: int, seed: int = 0) -> KnowledgeGraph:
    """A random tree with every edge directed away from the root (node 0).

    Each node ``i > 0`` attaches under a uniformly random earlier node, so
    the result is sparse (``|E0| = n - 1``) and weakly connected but almost
    never strongly connected.
    """
    _require_positive(n)
    rng = random.Random(seed)
    edges = [(rng.randrange(i), i) for i in range(1, n)]
    return KnowledgeGraph(range(n), edges)


def erdos_renyi(
    n: int,
    p: float,
    seed: int = 0,
    *,
    ensure_weakly_connected: bool = True,
) -> KnowledgeGraph:
    """Directed G(n, p).

    With ``ensure_weakly_connected`` (the default), a random arborescence is
    overlaid first so every sample is a single weakly connected component --
    the precondition of the Bounded model -- without distorting the density
    regime for ``p`` above the connectivity threshold.
    """
    _require_positive(n)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    graph = KnowledgeGraph(range(n))
    if ensure_weakly_connected:
        for i in range(1, n):
            graph.add_edge(rng.randrange(i), i)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                graph.add_edge(u, v)
    return graph


def dense_layered(layers: int, width: int) -> KnowledgeGraph:
    """A dense weakly connected DAG: ``layers`` layers of ``width`` nodes,
    with every node knowing every node of the next layer.

    ``|E0| = (layers - 1) * width**2``, i.e. ``Theta(n * width)`` -- the
    non-sparse regime where resource discovery is interesting.
    """
    if layers < 1 or width < 1:
        raise ValueError("layers and width must be >= 1")
    n = layers * width
    edges = []
    for layer in range(layers - 1):
        for u in range(layer * width, (layer + 1) * width):
            for v in range((layer + 1) * width, (layer + 2) * width):
                edges.append((u, v))
    return KnowledgeGraph(range(n), edges)


def preferential_attachment(n: int, out_degree: int, seed: int = 0) -> KnowledgeGraph:
    """A scale-free-ish digraph: node ``i`` links to ``out_degree`` targets
    chosen among ``0..i-1`` with probability proportional to in-degree + 1.

    Models the peer-to-peer bootstrap graphs of the paper's motivation,
    where new peers know a few well-known peers.
    """
    _require_positive(n)
    if out_degree < 1:
        raise ValueError(f"out_degree must be >= 1, got {out_degree}")
    rng = random.Random(seed)
    graph = KnowledgeGraph(range(n))
    # Repeated-target list realisation of preferential attachment.
    attractor_pool: List[int] = [0]
    for i in range(1, n):
        targets = set()
        wanted = min(out_degree, i)
        while len(targets) < wanted:
            targets.add(rng.choice(attractor_pool))
        for t in sorted(targets):
            graph.add_edge(i, t)
            attractor_pool.append(t)
        attractor_pool.append(i)
    return graph


def random_weakly_connected(
    n: int,
    extra_edges: int,
    seed: int = 0,
) -> KnowledgeGraph:
    """A random arborescence plus ``extra_edges`` uniform random edges.

    The workhorse family for property-based testing: always one weak
    component, tunable density, arbitrary direction mix.
    """
    _require_positive(n)
    if extra_edges < 0:
        raise ValueError(f"extra_edges must be >= 0, got {extra_edges}")
    rng = random.Random(seed)
    graph = KnowledgeGraph(range(n))
    for i in range(1, n):
        graph.add_edge(rng.randrange(i), i)
    added = 0
    attempts = 0
    max_possible = n * (n - 1) - (n - 1)
    budget = min(extra_edges, max_possible)
    while added < budget and attempts < 50 * (budget + 1):
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and graph.add_edge(u, v):
            added += 1
    return graph


def random_strongly_connected(n: int, extra_edges: int, seed: int = 0) -> KnowledgeGraph:
    """A directed cycle plus random chords: always strongly connected."""
    _require_positive(n)
    rng = random.Random(seed)
    graph = KnowledgeGraph(range(n))
    if n > 1:
        for i in range(n):
            graph.add_edge(i, (i + 1) % n)
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 50 * (extra_edges + 1):
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and graph.add_edge(u, v):
            added += 1
    return graph


def complete_graph(n: int) -> KnowledgeGraph:
    """Every node knows every other node (both directions)."""
    _require_positive(n)
    return KnowledgeGraph(
        range(n), ((u, v) for u in range(n) for v in range(n) if u != v)
    )


def disjoint_union(*graphs: KnowledgeGraph) -> KnowledgeGraph:
    """Combine graphs over disjoint relabelled integer ids.

    Used to exercise the per-component semantics of the problem statement
    (one leader per weakly connected component).
    """
    nodes: List[int] = []
    edges: List[Tuple[int, int]] = []
    offset = 0
    for graph in graphs:
        relabel = {node: offset + i for i, node in enumerate(graph.nodes)}
        nodes.extend(relabel[node] for node in graph.nodes)
        edges.extend((relabel[u], relabel[v]) for u, v in graph.edges())
        offset += graph.n
    return KnowledgeGraph(nodes, edges)


def grid(rows: int, cols: int, *, bidirectional: bool = False) -> KnowledgeGraph:
    """A rows x cols grid; each cell knows its right and down neighbours
    (and the reverse directions too when ``bidirectional``).

    Node ``(r, c)`` has id ``r * cols + c``.  Grids model spatial overlays
    (sensor fields, mesh networks) and have Theta(sqrt n) diameter -- the
    slowest-information-spread regime among our families.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    n = rows * cols
    edges = []
    for r in range(rows):
        for c in range(cols):
            here = r * cols + c
            if c + 1 < cols:
                edges.append((here, here + 1))
            if r + 1 < rows:
                edges.append((here, here + cols))
    graph = KnowledgeGraph(range(n), edges)
    if bidirectional:
        for u, v in list(graph.edges()):
            graph.add_edge(v, u)
    return graph


def community_graph(
    n_communities: int,
    community_size: int,
    *,
    p_internal: float = 0.3,
    bridges: int = 1,
    seed: int = 0,
) -> KnowledgeGraph:
    """A planted-partition digraph: dense random knowledge inside each
    community, ``bridges`` random directed links from each community to the
    next (mod n_communities).

    Models federated peer groups (each data centre's peers know each other
    well, few cross-links) -- the regime where discovery cost is dominated
    by intra-cluster traffic but correctness hinges on the sparse bridges.
    Weak connectivity is guaranteed by a spanning backbone inside each
    community plus the ring of bridges.
    """
    if n_communities < 1 or community_size < 1:
        raise ValueError("n_communities and community_size must be >= 1")
    if not 0.0 <= p_internal <= 1.0:
        raise ValueError(f"p_internal must be in [0, 1], got {p_internal}")
    if bridges < 1:
        raise ValueError(f"bridges must be >= 1, got {bridges}")
    rng = random.Random(seed)
    n = n_communities * community_size
    graph = KnowledgeGraph(range(n))
    for community in range(n_communities):
        base = community * community_size
        members = range(base, base + community_size)
        # Spanning backbone keeps the community weakly connected.
        for offset in range(1, community_size):
            graph.add_edge(base + rng.randrange(offset), base + offset)
        for u in members:
            for v in members:
                if u != v and rng.random() < p_internal:
                    graph.add_edge(u, v)
    if n_communities > 1:
        for community in range(n_communities):
            target_base = ((community + 1) % n_communities) * community_size
            base = community * community_size
            for _ in range(bridges):
                graph.add_edge(
                    base + rng.randrange(community_size),
                    target_base + rng.randrange(community_size),
                )
    return graph


def _require_positive(n: int) -> None:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
