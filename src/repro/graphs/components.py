"""Weak and strong connectivity on knowledge graphs.

Resource Discovery is defined per *weakly connected component* (paths in the
induced undirected graph), while the O(n) leader-election observation of
Section 1 applies to *strongly connected* graphs.  Both component
computations are implemented here from first principles (iterative BFS and
Tarjan's SCC algorithm); the test suite cross-checks them against networkx.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.graphs.knowledge_graph import KnowledgeGraph, NodeId

__all__ = [
    "weakly_connected_components",
    "strongly_connected_components",
    "is_weakly_connected",
    "is_strongly_connected",
    "component_of",
]


def weakly_connected_components(graph: KnowledgeGraph) -> List[Set[NodeId]]:
    """Return the weakly connected components, ordered by first node seen."""
    visited: Set[NodeId] = set()
    components: List[Set[NodeId]] = []
    for start in graph.nodes:
        if start in visited:
            continue
        component: Set[NodeId] = set()
        frontier = [start]
        visited.add(start)
        while frontier:
            node = frontier.pop()
            component.add(node)
            for neighbor in graph.undirected_neighbors(node):
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append(neighbor)
        components.append(component)
    return components


def component_of(graph: KnowledgeGraph, node: NodeId) -> Set[NodeId]:
    """Return the weakly connected component containing ``node``."""
    for component in weakly_connected_components(graph):
        if node in component:
            return component
    raise KeyError(f"unknown node {node!r}")


def is_weakly_connected(graph: KnowledgeGraph) -> bool:
    """Whether the whole graph is one weakly connected component."""
    if graph.n == 0:
        return True
    return len(weakly_connected_components(graph)) == 1


def strongly_connected_components(graph: KnowledgeGraph) -> List[Set[NodeId]]:
    """Tarjan's algorithm, iterative to dodge the recursion limit."""
    index_of: Dict[NodeId, int] = {}
    lowlink: Dict[NodeId, int] = {}
    on_stack: Set[NodeId] = set()
    stack: List[NodeId] = []
    components: List[Set[NodeId]] = []
    counter = 0

    for root in graph.nodes:
        if root in index_of:
            continue
        # Each frame is (node, iterator over successors).
        work = [(root, iter(sorted(graph.successors(root), key=repr)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append(
                        (succ, iter(sorted(graph.successors(succ), key=repr)))
                    )
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: Set[NodeId] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def is_strongly_connected(graph: KnowledgeGraph) -> bool:
    """Whether the whole graph is one strongly connected component."""
    if graph.n == 0:
        return True
    return len(strongly_connected_components(graph)) == 1
