"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``           run one discovery algorithm on a generated graph and
                  print the outcome, accounting, and verification report
``experiments``   regenerate experiment tables (all, or a named subset),
                  optionally at reduced "quick" sizes
``compare``       the Section 1.1 baseline comparison table
``lower-bound``   the Theorem 1 adversary on T(height)
``families``      list the available graph families
``sweep``         multi-seed sweep of one experiment through the
                  ``repro.parallel`` engine (worker pool + result cache)
``chaos``         fault-injection sweep: scenarios x variants under the
                  stepwise safety monitor, with a degradation report
                  (exit 1 if any safety invariant broke)
``trace``         structured observability: ``record`` a run's event
                  timeline (optionally under a fault scenario and with
                  the wall-time profiler), ``summarize`` a timeline file,
                  ``diff`` two timelines
``serve-sim``     run the Dynamic Ad-hoc system as a steady-state
                  service under an open-loop workload (Poisson /
                  constant / bursty arrivals) and print latency
                  percentiles, throughput, reconvergence lag, and the
                  Theorem 8 amortized-cost curve
``campaign``      crash-safe resumable experiment campaigns: a SQLite
                  store of cells drained by lease-claiming workers
                  (``init`` / ``run`` / ``status`` / ``resume`` /
                  ``report``); a SIGKILLed campaign resumes with zero
                  done cells recomputed

Everything the CLI prints comes from the same experiment runners the
benchmarks use, so numbers match ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.experiments import (
    GRAPH_FAMILIES,
    QUICK_SWEEP_KWARGS,
    SWEEPABLE_EXPERIMENTS,
    build_family,
    exp_adhoc_probes,
    exp_baseline_comparison,
    exp_bit_complexity,
    exp_dynamic_additions,
    exp_generic_scaling,
    exp_hbl_algorithms,
    exp_kp_bit_improvement,
    exp_message_lemmas,
    exp_near_linear_scaling,
    exp_sequential_unionfind,
    exp_service_slo,
    exp_strongly_connected,
    exp_time_complexity,
    exp_tree_lower_bound,
    exp_unionfind_reduction,
)
from repro.analysis.tables import render_table
from repro.core.adhoc import run_adhoc
from repro.core.bounded import run_bounded
from repro.core.generic import run_generic
from repro.lowerbounds.tree_adversary import run_tree_lower_bound
from repro.sim.scheduler import GlobalFifoScheduler, LifoScheduler, RandomScheduler
from repro.sim.timed import TimedScheduler
from repro.verification.invariants import verify_discovery
from repro.verification.lemmas import check_all_lemmas

__all__ = ["main"]

#: name -> (runner at full size, runner at quick size)
EXPERIMENTS: Dict[str, Tuple[Callable, Callable]] = {
    "EXP-1": (
        lambda: exp_tree_lower_bound(heights=(3, 4, 5, 6, 7, 8, 9, 10)),
        lambda: exp_tree_lower_bound(heights=(3, 5, 7)),
    ),
    "EXP-2": (
        lambda: exp_unionfind_reduction(ns=(16, 32, 64, 128, 256)),
        lambda: exp_unionfind_reduction(ns=(16, 32)),
    ),
    "EXP-3": (
        lambda: exp_generic_scaling(ns=(64, 128, 256, 512, 1024)),
        lambda: exp_generic_scaling(ns=(32, 64)),
    ),
    "EXP-4": (
        lambda: exp_near_linear_scaling(ns=(64, 128, 256, 512, 1024)),
        lambda: exp_near_linear_scaling(ns=(32, 64)),
    ),
    "EXP-5": (
        lambda: exp_bit_complexity(ns=(64, 128, 256, 512)),
        lambda: exp_bit_complexity(ns=(32, 64)),
    ),
    "EXP-6-9": (
        lambda: exp_message_lemmas(ns=(64, 256, 1024)),
        lambda: exp_message_lemmas(ns=(32,)),
    ),
    "EXP-10": (
        lambda: exp_dynamic_additions(n_initial=256, n_new=128, links_new=128),
        lambda: exp_dynamic_additions(n_initial=32, n_new=8, links_new=8),
    ),
    "EXP-11": (
        lambda: exp_baseline_comparison(n=512),
        lambda: exp_baseline_comparison(n=64),
    ),
    "EXP-12": (
        lambda: exp_adhoc_probes(n=512, probes=2048),
        lambda: exp_adhoc_probes(n=64, probes=64),
    ),
    "EXP-13": (
        lambda: exp_strongly_connected(ns=(64, 128, 256, 512, 1024)),
        lambda: exp_strongly_connected(ns=(32, 64)),
    ),
    "EXP-14": (
        lambda: exp_sequential_unionfind(ns=(256, 1024, 4096, 16384)),
        lambda: exp_sequential_unionfind(ns=(64, 256)),
    ),
    "EXP-15": (
        lambda: exp_time_complexity(ns=(64, 128, 256, 512)),
        lambda: exp_time_complexity(ns=(32, 64)),
    ),
    "EXP-17": (
        lambda: exp_hbl_algorithms(ns=(32, 64, 128, 256)),
        lambda: exp_hbl_algorithms(ns=(16, 32)),
    ),
    "EXP-18": (
        lambda: exp_kp_bit_improvement(ns=(128, 256, 512, 1024, 2048)),
        lambda: exp_kp_bit_improvement(ns=(64, 128)),
    ),
    "EXP-19": (
        lambda: exp_service_slo(n=128, rate=8.0, duration=4000),
        lambda: exp_service_slo(n=24, rate=6.0, duration=800),
    ),
}

_RUNNERS = {"generic": run_generic, "bounded": run_bounded, "adhoc": run_adhoc}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Asynchronous Resource Discovery (Abraham & Dolev, PODC 2003) "
            "-- reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one discovery algorithm")
    run_p.add_argument("--variant", choices=sorted(_RUNNERS), default="generic")
    run_p.add_argument("--family", choices=sorted(GRAPH_FAMILIES), default="sparse-random")
    run_p.add_argument("--n", type=int, default=128)
    run_p.add_argument(
        "--graph-file",
        help="load the graph from an edge-list/.json file instead of "
        "generating one (overrides --family/--n)",
    )
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--scheduler",
        choices=("fifo", "lifo", "random", "timed"),
        default="random",
        help="message delivery order (default: seeded random)",
    )
    run_p.add_argument(
        "--channels",
        choices=("fifo", "random"),
        default="fifo",
        help="channel delivery discipline (random = the ABL-3 reorder ablation)",
    )
    run_p.add_argument(
        "--greedy-queries",
        action="store_true",
        help="ablation: disable Section 4.1's query balancing (generic only)",
    )

    exp_p = sub.add_parser("experiments", help="regenerate experiment tables")
    exp_p.add_argument(
        "names",
        nargs="*",
        metavar="EXP",
        help=f"subset to run (default: all of {', '.join(sorted(EXPERIMENTS))})",
    )
    exp_p.add_argument("--quick", action="store_true", help="reduced sizes")

    cmp_p = sub.add_parser("compare", help="baseline comparison table")
    cmp_p.add_argument("--n", type=int, default=256)
    cmp_p.add_argument("--seed", type=int, default=3)

    lb_p = sub.add_parser("lower-bound", help="Theorem 1 adversary on T(height)")
    lb_p.add_argument("--height", type=int, default=8)

    sub.add_parser("families", help="list graph families")

    prof_p = sub.add_parser(
        "profile", help="phase / depth / traffic profile of one execution"
    )
    prof_p.add_argument("--variant", choices=sorted(_RUNNERS), default="generic")
    prof_p.add_argument("--family", choices=sorted(GRAPH_FAMILIES), default="dense-random")
    prof_p.add_argument("--n", type=int, default=256)
    prof_p.add_argument("--seed", type=int, default=0)

    rep_p = sub.add_parser("report", help="regenerate the full experiment report")
    rep_p.add_argument("--out", help="write to this file instead of stdout")
    rep_p.add_argument("--quick", action="store_true", help="reduced sizes")
    rep_p.add_argument("names", nargs="*", metavar="EXP", help="subset of sections")

    sweep_p = sub.add_parser(
        "sweep", help="multi-seed sweep via the parallel execution engine"
    )
    sweep_p.add_argument(
        "--exp",
        required=True,
        choices=sorted(SWEEPABLE_EXPERIMENTS),
        help="experiment to sweep (a seed-taking runner)",
    )
    sweep_p.add_argument(
        "--seeds",
        default="0:8",
        help="half-open range 'a:b' or comma list '0,3,7' (default: 0:8)",
    )
    sweep_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size; 1 = serial in-process (default)",
    )
    sweep_p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job timeout in seconds (parallel mode only)",
    )
    sweep_p.add_argument("--quick", action="store_true", help="reduced sizes")
    sweep_p.add_argument(
        "--no-cache", action="store_true", help="always re-execute, never store"
    )
    sweep_p.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: benchmarks/results/cache)",
    )
    sweep_p.add_argument(
        "--no-progress", action="store_true", help="suppress per-job stderr lines"
    )
    sweep_p.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-run failed/timed-out jobs up to this many extra attempts "
        "(default: 0, i.e. fail fast)",
    )
    sweep_p.add_argument(
        "--backoff",
        type=float,
        default=0.0,
        help="base delay in seconds before each retry round, doubled per "
        "round (default: 0)",
    )

    chaos_p = sub.add_parser(
        "chaos",
        help="fault-injection sweep with stepwise safety checks",
        description=(
            "Run discovery variants under named fault scenarios (loss, "
            "duplication, crash-stop, crash-recovery, partitions, delay "
            "bursts) with the stepwise safety monitor watching every step.  "
            "Prints the aggregated degradation table; exits 1 if any trial "
            "broke a safety invariant.  --recovery selects the "
            "crash-recovery scenario set (nodes crash mid-run and restart "
            "from durable checkpoints under a new incarnation epoch)."
        ),
    )
    chaos_p.add_argument(
        "--scenarios",
        default="all",
        help="comma list of scenario names, or 'all' (see repro.faults)",
    )
    chaos_p.add_argument(
        "--variants",
        default="generic",
        help="comma list of discovery variants (default: generic)",
    )
    chaos_p.add_argument("--n", type=int, default=32)
    chaos_p.add_argument(
        "--family", choices=sorted(GRAPH_FAMILIES), default="sparse-random"
    )
    chaos_p.add_argument(
        "--seeds", default="0:4", help="half-open range 'a:b' or comma list"
    )
    chaos_p.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = serial)"
    )
    chaos_p.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout (parallel mode)"
    )
    chaos_p.add_argument(
        "--raw",
        action="store_true",
        help="run the protocols bare, without the reliable transport "
        "(measures how the algorithms themselves degrade)",
    )
    chaos_p.add_argument(
        "--transport",
        choices=("sr", "gbn"),
        default="sr",
        help="reliable transport generation: 'sr' selective repeat with "
        "piggybacked/delayed acks and adaptive RTO (default), 'gbn' the "
        "v1 go-back-N path (kept for differential runs)",
    )
    chaos_p.add_argument(
        "--recovery",
        action="store_true",
        help="run the crash-recovery scenario set (durable checkpoints, "
        "epoch fencing, rejoin); incompatible with --raw, which lacks the "
        "transport the recovery model fences through",
    )
    chaos_p.add_argument(
        "--budget-factor",
        type=int,
        default=8,
        help="step budget as a multiple of the fault-free budget (default: 8)",
    )
    chaos_p.add_argument(
        "--bench-out",
        default=None,
        help="also write the aggregated table as JSON to this path",
    )
    chaos_p.add_argument(
        "--no-progress", action="store_true", help="suppress per-job stderr lines"
    )
    chaos_p.add_argument(
        "--obs-out",
        default=None,
        help="re-run the first (scenario, variant, seed) cell with the "
        "observability recorder attached and write its JSONL timeline here",
    )
    sweep_p.add_argument(
        "--obs-out",
        default=None,
        help="write a job-lifecycle JSONL timeline (one 'job' event per "
        "sweep job: status + wall time) to this path",
    )

    trace_p = sub.add_parser(
        "trace",
        help="record / summarize / diff observability timelines",
        description=(
            "Structured observability for single runs: 'record' executes "
            "one discovery run (optionally under a fault scenario) with "
            "the run-event recorder and metrics sampler attached and "
            "writes a JSONL timeline; 'summarize' prints a digest of a "
            "timeline file (exit 1 if it holds no events); 'diff' "
            "compares two timelines (exit 1 if they diverge)."
        ),
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    rec_p = trace_sub.add_parser("record", help="run once and write a timeline")
    rec_p.add_argument("--variant", choices=sorted(_RUNNERS), default="generic")
    rec_p.add_argument(
        "--family", choices=sorted(GRAPH_FAMILIES), default="sparse-random"
    )
    rec_p.add_argument("--n", type=int, default=64)
    rec_p.add_argument("--seed", type=int, default=0)
    rec_p.add_argument("--out", required=True, help="timeline JSONL path")
    rec_p.add_argument(
        "--scenario",
        default=None,
        help="record under this fault scenario via the chaos harness "
        "(default: a clean fault-free run)",
    )
    rec_p.add_argument(
        "--cadence",
        type=int,
        default=None,
        help="metrics sampling cadence in steps (clean runs only; "
        "default: 64)",
    )
    rec_p.add_argument(
        "--profile",
        action="store_true",
        help="also wrap dispatch + handlers in perf_counter_ns buckets "
        "and print the hot-path table",
    )

    sum_p = trace_sub.add_parser("summarize", help="digest one timeline file")
    sum_p.add_argument("timeline", help="JSONL timeline path")

    diff_p = trace_sub.add_parser("diff", help="compare two timeline files")
    diff_p.add_argument("timeline_a")
    diff_p.add_argument("timeline_b")

    serve_p = sub.add_parser(
        "serve-sim",
        help="steady-state discovery service under open-loop load",
        description=(
            "Run the Dynamic Ad-hoc system (Section 6) as a long-running "
            "service: inject a seeded open-loop arrival schedule of joins, "
            "link additions, and leader probes in virtual time -- no "
            "terminal quiescence required -- and report probe latency "
            "percentiles (p50/p95/p99), throughput, reconvergence lag "
            "after churn bursts, and the amortized message cost curve "
            "that Theorem 8 bounds by O(m alpha(m, n + n-hat)).  Rates "
            "are events per 1000 virtual steps.  Output is a "
            "deterministic function of the seed."
        ),
    )
    serve_p.add_argument(
        "--workload",
        choices=("poisson", "constant", "bursty"),
        default="poisson",
        help="arrival process (default: poisson)",
    )
    serve_p.add_argument(
        "--rate",
        type=float,
        default=5.0,
        help="mean arrival rate in events per 1000 virtual steps",
    )
    serve_p.add_argument(
        "--duration",
        type=int,
        default=2000,
        help="length of the arrival window in virtual steps",
    )
    serve_p.add_argument("--seed", type=int, default=0)
    serve_p.add_argument(
        "--family", choices=sorted(GRAPH_FAMILIES), default="sparse-random"
    )
    serve_p.add_argument("--n", type=int, default=64, help="initial network size")
    serve_p.add_argument(
        "--mix",
        default=None,
        metavar="JOIN:LINK:PROBE",
        help="relative event-kind weights (default 0.2:0.2:0.6)",
    )
    serve_p.add_argument(
        "--burst",
        default=None,
        metavar="EVERY:LEN:FACTOR",
        help="churn-burst shape (implies --workload bursty): a LEN-step "
        "window every EVERY steps at FACTOR times the base rate",
    )
    serve_p.add_argument(
        "--step-budget",
        type=int,
        default=None,
        help="hard cap on executed steps (default: derived from the "
        "workload; exhaustion is reported, not raised)",
    )
    serve_p.add_argument(
        "--cadence",
        type=int,
        default=None,
        help="metrics sampling cadence in virtual steps (default: 64)",
    )
    serve_p.add_argument(
        "--verify",
        action="store_true",
        help="run the full discovery invariants at each post-burst "
        "reconvergence point (slow)",
    )
    serve_p.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject faults into the steady state (after warmup): a "
        "comma-separated spec of loss=P, dup=P, and crash=K@STEP "
        "(crash K low-in-degree nodes STEP window-steps in), e.g. "
        "'loss=0.1,crash=2@500'.  Implies the reliable transport.",
    )
    serve_p.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the fault injector's RNG (default: 0)",
    )
    serve_p.add_argument(
        "--transport",
        choices=("sr", "gbn"),
        default="sr",
        help="reliable-transport generation when faults are on "
        "(default: sr, the selective-repeat v2 path)",
    )
    serve_p.add_argument(
        "--obs-out",
        default=None,
        help="write the run's JSONL timeline (one service-op event per "
        "completed probe plus sampled metrics) to this path",
    )

    from repro.campaign.cli import add_campaign_parser

    add_campaign_parser(sub)
    return parser


def _parse_seeds(spec: str) -> List[int]:
    """``'a:b'`` (half-open, like range) or ``'s1,s2,...'`` or one seed."""
    spec = spec.strip()
    if ":" in spec:
        lo_text, _, hi_text = spec.partition(":")
        lo, hi = int(lo_text or 0), int(hi_text)
        if hi <= lo:
            raise ValueError(f"empty seed range {spec!r}")
        return list(range(lo, hi))
    return [int(part) for part in spec.split(",") if part.strip()]


def _make_scheduler(name: str, seed: int):
    if name == "fifo":
        return GlobalFifoScheduler()
    if name == "lifo":
        return LifoScheduler()
    if name == "timed":
        return TimedScheduler()
    return RandomScheduler(seed)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.graph_file:
        from repro.graphs.io import load_graph

        graph = load_graph(args.graph_file)
    else:
        graph = build_family(args.family, args.n, seed=args.seed)
    scheduler = _make_scheduler(args.scheduler, args.seed)
    kwargs = {"scheduler": scheduler}
    if args.channels != "fifo":
        # Route through build_simulation directly for the channel ablation.
        from repro.core.result import collect_result
        from repro.core.runner import build_simulation

        sim, nodes = build_simulation(
            graph,
            args.variant,
            scheduler=scheduler,
            channel_discipline=args.channels,
            channel_seed=args.seed,
        )
        sim.run()
        result = collect_result(graph, nodes, sim, args.variant)
        report = verify_discovery(result, graph)
        print(result.summary())
        print(f"(channel discipline: {args.channels})")
        print(f"verified: {report}")
        return 0
    if args.greedy_queries:
        if args.variant != "generic":
            print("--greedy-queries only applies to the generic variant", file=sys.stderr)
            return 2
        kwargs["greedy_queries"] = True
    result = _RUNNERS[args.variant](graph, **kwargs)
    report = verify_discovery(result, graph)
    print(result.summary())
    if isinstance(scheduler, TimedScheduler):
        print(f"completion time: {scheduler.now:g} (unit message latency)")
    print("\nmessages by type:")
    for msg_type in sorted(result.stats.messages_by_type):
        print(
            f"  {msg_type:<12} {result.stats.messages_by_type[msg_type]:>8}  "
            f"({result.stats.bits_by_type[msg_type]:,} bits)"
        )
    print("\ncomplexity bounds:")
    for check in check_all_lemmas(result.stats, graph.n, graph.n_edges, result.variant):
        print(f"  {check}")
    print(f"\nverified: {report}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    names = args.names or sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    for name in names:
        full, quick = EXPERIMENTS[name]
        headers, rows = (quick if args.quick else full)()
        print(f"\n=== {name} ===")
        print(render_table(headers, rows))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    headers, rows = exp_baseline_comparison(n=args.n, seed=args.seed)
    print(render_table(headers, rows))
    return 0


def _cmd_lower_bound(args: argparse.Namespace) -> int:
    outcome = run_tree_lower_bound(args.height)
    print(outcome.summary())
    print("floor holds" if outcome.respects_floor else "FLOOR VIOLATED")
    return 0 if outcome.respects_floor else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.analysis.protocol_stats import profile_execution
    from repro.core.runner import build_simulation

    graph = build_family(args.family, args.n, seed=args.seed)
    sim, nodes = build_simulation(graph, args.variant, seed=args.seed)
    sim.run()
    profile = profile_execution(nodes, sim.stats)
    print(profile.summary())
    print("\nphase histogram (final phase -> nodes):")
    for phase, count in sorted(profile.phase_histogram.items()):
        print(f"  {phase:>3}: {count}")
    print("\npointer-depth histogram (hops to leader -> nodes):")
    for depth, count in sorted(profile.depth_histogram.items()):
        print(f"  {depth:>3}: {count}")
    print("\ntraffic mix (messages / bits):")
    for msg_type in profile.message_share:
        print(
            f"  {msg_type:<12} {profile.message_share[msg_type]:>6.1%}  /  "
            f"{profile.bit_share.get(msg_type, 0):>6.1%}"
        )
    if not profile.phase_bound_holds:
        print("\nWARNING: phase bound exceeded (protocol bug)")
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import build_report

    try:
        text = build_report(quick=args.quick, only=args.names or None)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.out:
        import pathlib

        pathlib.Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.sweep import aggregate_tables
    from repro.parallel import (
        DEFAULT_CACHE_DIR,
        JobFailure,
        ParallelExecutor,
        ProgressReporter,
        ResultCache,
        sweep_jobs,
    )

    try:
        seeds = _parse_seeds(args.seeds)
    except ValueError as exc:
        print(f"bad --seeds: {exc}", file=sys.stderr)
        return 2
    if not seeds:
        print("bad --seeds: no seeds given", file=sys.stderr)
        return 2
    if args.workers < 1:
        print(f"bad --workers: must be >= 1, got {args.workers}", file=sys.stderr)
        return 2

    kwargs = QUICK_SWEEP_KWARGS.get(args.exp, {}) if args.quick else {}
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    executor = ParallelExecutor(
        workers=args.workers,
        timeout=args.timeout,
        cache=cache,
        progress=ProgressReporter(enabled=not args.no_progress),
        retries=args.retries,
        backoff=args.backoff,
    )
    results = executor.run(sweep_jobs(args.exp, seeds, kwargs))
    if args.obs_out:
        _write_job_timeline(args.obs_out, args.exp, results)
    retried = [r for r in results if r.attempts > 1]
    if retried:
        print(
            f"retries: {len(retried)} job(s) took multiple attempts "
            f"(max {max(r.attempts for r in retried)})",
            file=sys.stderr,
        )
    failures = [r for r in results if not r.ok]
    if failures:
        for failure in failures:
            print(
                f"FAILED {failure.job.label()}: {failure.status} ({failure.error})",
                file=sys.stderr,
            )
        return 1
    try:
        headers, rows = aggregate_tables([r.table for r in results])
    except (ValueError, JobFailure) as exc:
        print(f"aggregation failed: {exc}", file=sys.stderr)
        return 1
    print(f"=== {args.exp} x {len(seeds)} seeds ===")
    print(render_table(headers, rows))
    return 0


def _write_job_timeline(path: str, experiment: str, results) -> None:
    """Persist a sweep's job lifecycle as an observability timeline.

    One ``job`` event per sweep job, in submission order: ``node`` holds
    the seed, ``value`` the terminal status plus wall time.  The same
    ``trace summarize`` / ``trace diff`` tooling that reads run timelines
    reads these.
    """
    from repro.obs import Timeline, write_timeline
    from repro.obs.events import RunEvent

    events = [
        RunEvent(
            step=index,
            kind="job",
            node=result.job.seed,
            msg_type=result.job.experiment,
            value={
                key: value
                for key, value in {
                    "status": result.status,
                    "wall_s": round(result.wall, 6) if result.wall is not None else None,
                    "attempts": result.attempts if result.attempts > 1 else None,
                    "error": result.error,
                }.items()
                if value is not None
            },
        )
        for index, result in enumerate(results)
    ]
    timeline = Timeline(
        meta={"command": "sweep", "experiment": experiment, "jobs": len(results)},
        events=events,
    )
    write_timeline(path, timeline)
    print(f"wrote {path} ({len(events)} job events)")


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.sweep import aggregate_tables
    from repro.faults.harness import CHAOS_HEADERS
    from repro.faults.scenarios import FAULT_SCENARIOS, RECOVERY_SCENARIOS
    from repro.parallel import (
        JobFailure,
        ParallelExecutor,
        ProgressReporter,
        sweep_jobs,
    )

    try:
        seeds = _parse_seeds(args.seeds)
    except ValueError as exc:
        print(f"bad --seeds: {exc}", file=sys.stderr)
        return 2
    if not seeds:
        print("bad --seeds: no seeds given", file=sys.stderr)
        return 2
    if args.recovery and args.raw:
        print(
            "--recovery and --raw are incompatible: crash-recovery needs "
            "the reliable transport (epoch fencing lives in ReliableNode)",
            file=sys.stderr,
        )
        return 2
    if args.scenarios.strip() == "all":
        if args.recovery:
            scenarios = tuple(RECOVERY_SCENARIOS)
        elif args.raw:
            # Recovery scenarios hard-require the reliable transport, so a
            # raw sweep over "all" silently narrows to the rest.
            scenarios = tuple(
                s for s in FAULT_SCENARIOS if s not in RECOVERY_SCENARIOS
            )
        else:
            scenarios = tuple(FAULT_SCENARIOS)
    else:
        scenarios = tuple(s.strip() for s in args.scenarios.split(",") if s.strip())
        unknown = [s for s in scenarios if s not in FAULT_SCENARIOS]
        if unknown:
            print(
                f"unknown scenarios {unknown}; choose from "
                f"{', '.join(sorted(FAULT_SCENARIOS))}",
                file=sys.stderr,
            )
            return 2
        if args.raw:
            needs_transport = [s for s in scenarios if s in RECOVERY_SCENARIOS]
            if needs_transport:
                print(
                    f"scenarios {needs_transport} are crash-recovery "
                    "scenarios and cannot run with --raw",
                    file=sys.stderr,
                )
                return 2
    variants = tuple(v.strip() for v in args.variants.split(",") if v.strip())
    bad = [v for v in variants if v not in _RUNNERS]
    if not variants or bad:
        print(f"bad --variants {args.variants!r}", file=sys.stderr)
        return 2

    kwargs = {
        "scenarios": scenarios,
        "variants": variants,
        "n": args.n,
        "family": args.family,
        "reliable": not args.raw,
        "transport": args.transport,
        "budget_factor": args.budget_factor,
    }
    # No result cache: chaos runs are the thing under test, and stale
    # verdicts after a protocol change would defeat the point.
    executor = ParallelExecutor(
        workers=args.workers,
        timeout=args.timeout,
        progress=ProgressReporter(enabled=not args.no_progress),
    )
    results = executor.run(sweep_jobs("chaos", seeds, kwargs))
    failures = [r for r in results if not r.ok]
    if failures:
        for failure in failures:
            print(
                f"FAILED {failure.job.label()}: {failure.status} ({failure.error})",
                file=sys.stderr,
            )
        return 1
    try:
        headers, rows = aggregate_tables([r.table for r in results])
    except (ValueError, JobFailure) as exc:
        print(f"aggregation failed: {exc}", file=sys.stderr)
        return 1

    transport = (
        "raw (no recovery)" if args.raw else f"reliable transport ({args.transport})"
    )
    print(
        f"=== chaos: {len(scenarios)} scenarios x {len(variants)} variants "
        f"x {len(seeds)} seeds, n={args.n} {args.family}, {transport} ==="
    )
    print(render_table(headers, rows))
    safe_col = CHAOS_HEADERS.index("safe")
    quiesced_col = CHAOS_HEADERS.index("quiesced")
    props_col = CHAOS_HEADERS.index("props")

    def clean(cell: object) -> bool:
        # The 0/1 flag columns survive aggregation as plain numbers only
        # when every seed agreed; a mixed column comes back as the string
        # "mean [min, max]", which by construction means rate < 1.
        return isinstance(cell, (int, float)) and cell >= 1.0

    unsafe = [row for row in rows if not clean(row[safe_col])]
    degraded = [
        row
        for row in rows
        if not clean(row[quiesced_col]) or not clean(row[props_col])
    ]
    print(
        f"degradation: {len(degraded)}/{len(rows)} scenario rows lost "
        "quiescence or properties on some seed "
        "(quiesced/safe/props columns are across-seed rates)"
    )
    if args.bench_out:
        payload = {
            "headers": headers,
            "rows": rows,
            "seeds": seeds,
            "params": {k: list(v) if isinstance(v, tuple) else v for k, v in kwargs.items()},
        }
        with open(args.bench_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.bench_out}")
    if args.obs_out:
        # One representative cell, re-run serially with the recorder on:
        # sweeps fan out across processes, so per-trial events cannot be
        # collected from the pool; the first (scenario, variant, seed)
        # cell is deterministic and cheap to replay.
        from repro.faults.harness import run_chaos_trial
        from repro.obs import Recorder, timeline_from_run, write_timeline

        recorder = Recorder()
        trial = run_chaos_trial(
            scenarios[0],
            variants[0],
            args.family,
            args.n,
            seeds[0],
            reliable=not args.raw,
            transport=args.transport,
            budget_factor=args.budget_factor,
            recorder=recorder,
        )
        timeline = timeline_from_run(
            recorder,
            meta={
                "command": "chaos",
                "scenario": scenarios[0],
                "variant": variants[0],
                "family": args.family,
                "n": args.n,
                "seed": seeds[0],
                "outcome": trial.outcome,
            },
        )
        write_timeline(args.obs_out, timeline)
        print(
            f"wrote {args.obs_out} ({len(timeline.events)} events, "
            f"outcome={trial.outcome})"
        )
    if unsafe:
        print(
            f"SAFETY VIOLATIONS in {len(unsafe)} scenario rows -- this is a bug.",
            file=sys.stderr,
        )
        return 1
    print("safety: clean (all stepwise invariants held on every seed)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import read_timeline, summarize_timeline

    if args.trace_command == "record":
        return _trace_record(args)
    if args.trace_command == "summarize":
        try:
            timeline = read_timeline(args.timeline)
        except (OSError, ValueError) as exc:
            print(f"cannot read {args.timeline}: {exc}", file=sys.stderr)
            return 2
        print(summarize_timeline(timeline))
        if not timeline.events:
            print("timeline holds no events", file=sys.stderr)
            return 1
        return 0
    # diff
    from repro.obs import diff_timelines

    try:
        timeline_a = read_timeline(args.timeline_a)
        timeline_b = read_timeline(args.timeline_b)
    except (OSError, ValueError) as exc:
        print(f"cannot read timeline: {exc}", file=sys.stderr)
        return 2
    identical, report = diff_timelines(timeline_a, timeline_b)
    print(report)
    return 0 if identical else 1


def _trace_record(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table as _render
    from repro.obs import (
        Profiler,
        Recorder,
        attach_metrics,
        timeline_from_run,
        write_timeline,
    )

    recorder = Recorder()
    profiler = Profiler() if args.profile else None
    meta = {
        "variant": args.variant,
        "family": args.family,
        "n": args.n,
        "seed": args.seed,
    }
    if args.scenario is not None:
        from repro.faults.harness import run_chaos_trial
        from repro.faults.scenarios import FAULT_SCENARIOS

        if args.scenario not in FAULT_SCENARIOS:
            print(
                f"unknown scenario {args.scenario!r}; choose from "
                f"{', '.join(sorted(FAULT_SCENARIOS))}",
                file=sys.stderr,
            )
            return 2
        if profiler is not None:
            print(
                "--profile needs direct simulator access; ignored with "
                "--scenario",
                file=sys.stderr,
            )
        trial = run_chaos_trial(
            args.scenario, args.variant, args.family, args.n, args.seed,
            recorder=recorder,
        )
        meta.update(scenario=args.scenario, outcome=trial.outcome)
        metrics = None
    else:
        from repro.core.runner import build_simulation

        graph = build_family(args.family, args.n, seed=args.seed)
        sim, _nodes = build_simulation(
            graph, args.variant, seed=args.seed, obs=recorder
        )
        metrics_kwargs = {} if args.cadence is None else {"cadence": args.cadence}
        metrics = attach_metrics(sim, recorder, **metrics_kwargs)
        if profiler is not None:
            profiler.instrument(sim)
        sim.run()
        metrics.finish(sim.steps)
        meta["steps"] = sim.steps
    timeline = timeline_from_run(recorder, metrics, meta=meta)
    write_timeline(args.out, timeline)
    print(
        f"wrote {args.out} ({len(timeline.events)} events, "
        f"{len(timeline.samples)} samples)"
    )
    if profiler is not None and args.scenario is None:
        headers, rows = profiler.report()
        print("\nhot paths:")
        print(_render(headers, rows))
    return 0


def _parse_mix(spec: str):
    from repro.service import EventMix

    parts = spec.split(":")
    if len(parts) != 3:
        raise SystemExit(f"--mix wants JOIN:LINK:PROBE, got {spec!r}")
    try:
        mix = EventMix(*(float(part) for part in parts))
        mix.validate()
    except ValueError as exc:
        raise SystemExit(f"bad --mix {spec!r}: {exc}")
    return mix


def _parse_burst(spec: str):
    parts = spec.split(":")
    if len(parts) != 3:
        raise SystemExit(f"--burst wants EVERY:LEN:FACTOR, got {spec!r}")
    try:
        return int(parts[0]), int(parts[1]), float(parts[2])
    except ValueError as exc:
        raise SystemExit(f"bad --burst {spec!r}: {exc}")


def _parse_faults(spec: str, graph, seed: int):
    """``loss=P,dup=P,crash=K@STEP`` -> a window-relative FaultPlan."""
    from repro.faults import CrashSpec, FaultPlan
    from repro.faults.scenarios import pick_crash_victims

    loss = duplicate = 0.0
    crashes = ()
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, value = part.partition("=")
        try:
            if key == "loss":
                loss = float(value)
            elif key == "dup":
                duplicate = float(value)
            elif key == "crash":
                count_text, _, at_text = value.partition("@")
                count, at_step = int(count_text), int(at_text or 0)
                crashes = tuple(
                    CrashSpec(victim, at_step)
                    for victim in pick_crash_victims(graph, count, seed)
                )
            else:
                raise SystemExit(f"unknown --faults key {key!r} in {spec!r}")
        except ValueError as exc:
            raise SystemExit(f"bad --faults {spec!r}: {exc}")
    return FaultPlan(loss=loss, duplicate=duplicate, crashes=crashes)


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    from repro.core.adhoc import AdhocNetwork
    from repro.obs.metrics import DEFAULT_CADENCE
    from repro.obs.timeline import write_timeline
    from repro.service import (
        ServiceDriver,
        amortized_table,
        build_workload,
        service_timeline,
        slo_table,
        summarize_service,
    )

    kind = args.workload
    kwargs = {}
    if args.mix is not None:
        kwargs["mix"] = _parse_mix(args.mix)
    if args.burst is not None:
        kind = "bursty"
        every, length, factor = _parse_burst(args.burst)
        kwargs.update(burst_every=every, burst_len=length, burst_factor=factor)

    graph = build_family(args.family, args.n, seed=args.seed)
    workload = build_workload(
        kind, graph, rate=args.rate, duration=args.duration, seed=args.seed, **kwargs
    )
    print(workload.describe())

    plan = None
    if args.faults is not None:
        plan = _parse_faults(args.faults, graph, args.fault_seed)
        print(f"steady-state faults: {plan.describe()} (transport={args.transport})")

    net = AdhocNetwork(
        graph, seed=args.seed, reliable=plan is not None, transport=args.transport
    )
    driver = ServiceDriver(
        net,
        workload,
        step_budget=args.step_budget,
        cadence=args.cadence if args.cadence is not None else DEFAULT_CADENCE,
        verify_on_reconvergence=args.verify,
        faults=plan,
        fault_seed=args.fault_seed,
    )
    report = driver.run()
    summary = summarize_service(report)

    print()
    print(render_table(*slo_table(report, summary)))
    if plan is not None:
        injected = {k: v for k, v in report.fault_counts.items() if v}
        totals = report.transport_totals
        print()
        print(
            "fault injection: "
            + (", ".join(f"{k}={v}" for k, v in sorted(injected.items())) or "none hit")
        )
        print(
            f"transport: {totals.get('retransmissions', 0)} retransmissions, "
            f"{totals.get('nacks_sent', 0)} nacks, "
            f"{totals.get('undeliverable', 0)} undeliverable"
        )
    if report.curve:
        print()
        print("Amortized cost curve (Theorem 8):")
        print(render_table(*amortized_table(report)))
    if args.obs_out:
        path = write_timeline(args.obs_out, service_timeline(report))
        print(f"\ntimeline written to {path}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign.cli import cmd_campaign

    return cmd_campaign(args)


def _cmd_families(_args: argparse.Namespace) -> int:
    for name in sorted(GRAPH_FAMILIES):
        example = build_family(name, 64, seed=0)
        print(f"  {name:<16} e.g. n={example.n:<5} |E0|={example.n_edges}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "experiments": _cmd_experiments,
        "compare": _cmd_compare,
        "lower-bound": _cmd_lower_bound,
        "families": _cmd_families,
        "profile": _cmd_profile,
        "report": _cmd_report,
        "sweep": _cmd_sweep,
        "chaos": _cmd_chaos,
        "trace": _cmd_trace,
        "serve-sim": _cmd_serve_sim,
        "campaign": _cmd_campaign,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
