"""EXP-14: sequential Union-Find cost curves (the substrate sanity check).

Measures pointer operations for union-by-rank under full path compression,
path halving, and no compression, on identical random workloads.

Shape criteria:
* rank/random workload: every find rule is near-linear -- pointer ops /
  (m alpha(m, n)) bounded and flat (union by rank alone caps depths at
  log n, so compression is not even needed there; its extra writes can
  exceed its savings, a fact the table records);
* naive/chain workload: the adversarial regime -- uncompressed finds pay
  the chain depth and the ratio explodes with n, while compressed finds
  stay near-linear (the Tarjan-van Leeuwen bound behind Lemma 5.6).
"""

from repro.analysis.experiments import exp_sequential_unionfind

NS = (256, 1024, 4096, 16384)


def test_sequential_unionfind(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        lambda: exp_sequential_unionfind(ns=NS, seed=0), rounds=1, iterations=1
    )
    record_table(
        "EXP-14-sequential-unionfind",
        headers,
        rows,
        notes=(
            "Criterion: compress/halve ratios flat (O(m alpha)); 'none' "
            "grows with n (the compression gap)."
        ),
    )
    def ratios(workload, rule):
        return [row[4] for row in rows if row[0] == workload and row[2] == rule]

    for rule in ("compress", "halve", "none"):
        series = ratios("rank/random", rule)
        assert max(series) <= 12, (rule, series)
        assert series[-1] <= series[0] * 1.3, (rule, series)
    compressed = ratios("naive/chain", "compress")
    uncompressed = ratios("naive/chain", "none")
    assert max(compressed) <= 12, compressed
    # The uncompressed adversarial curve grows ~linearly in n.
    assert uncompressed[-1] > 10 * compressed[-1], (uncompressed, compressed)
    assert uncompressed[-1] > 2 * uncompressed[0]
