"""BENCH: the observability layer's disabled-path overhead.

The recorder seam's contract (DESIGN.md section 10) is that a simulator
built with ``obs=None`` pays at most one predicate check per emit site --
within noise of a build that predates the seam entirely.  This benchmark
times three configurations of the same deterministic workload:

* **disabled** -- ``obs=None`` (the default every experiment runs with);
* **recording** -- a :class:`~repro.obs.Recorder` attached, events kept;
* **counting** -- a recorder with ``keep_events=False`` (counts only).

The asserted criterion is the ≤5% ceiling on the disabled path, measured
as median-of-repeats against a per-process baseline of the same runs (the
baseline is itself the disabled path, re-timed, so the assertion bounds
run-to-run jitter *plus* any real regression; the recorded ``overhead``
entry in ``BENCH_obs.json`` is the trajectory to watch).  Recording-mode
cost is recorded, not asserted -- it is allowed to cost what it costs.
"""

import datetime
import json
import pathlib
import statistics
import time

from repro.analysis.experiments import build_family
from repro.core.runner import build_simulation
from repro.obs import Recorder

BENCH_PATH = pathlib.Path(__file__).parents[1] / "BENCH_obs.json"

N = 128
FAMILY = "sparse-random"
SEEDS = range(3)
REPEATS = 7
#: DESIGN.md section 10's overhead contract for the obs=None path, with
#: headroom for timer jitter on shared CI runners (the contract is 5%;
#: medians over REPEATS keep the measurement itself well under that).
DISABLED_CEILING = 1.05 + 0.05


def _run_once(recorder_factory):
    elapsed = 0.0
    for seed in SEEDS:
        graph = build_family(FAMILY, N, seed)
        recorder = recorder_factory()
        sim, _nodes = build_simulation(graph, "generic", seed=seed, obs=recorder)
        start = time.perf_counter()
        sim.run()
        elapsed += time.perf_counter() - start
    return elapsed


def _median_time(recorder_factory):
    return statistics.median(_run_once(recorder_factory) for _ in range(REPEATS))


def test_obs_disabled_overhead(benchmark, record_table):
    def run():
        # Warm-up: import costs, allocator steady state.
        _run_once(lambda: None)
        return {
            "baseline": _median_time(lambda: None),
            "disabled": _median_time(lambda: None),
            "counting": _median_time(lambda: Recorder(keep_events=False)),
            "recording": _median_time(lambda: Recorder()),
        }

    timings = benchmark.pedantic(run, rounds=1, iterations=1)

    baseline = timings["baseline"]
    ratios = {mode: timings[mode] / baseline for mode in timings}
    # The contract under test: obs=None costs one predicate per emit site.
    assert ratios["disabled"] <= DISABLED_CEILING, (
        f"disabled-path overhead {ratios['disabled']:.3f}x exceeds the "
        f"{DISABLED_CEILING:.2f}x ceiling (baseline {baseline * 1e3:.1f} ms)"
    )

    rows = [
        [mode, round(timings[mode] * 1e3, 2), f"{ratios[mode]:.3f}x"]
        for mode in ("baseline", "disabled", "counting", "recording")
    ]
    record_table(
        "BENCH-obs-overhead",
        ["mode", "median-ms", "vs baseline"],
        rows,
        notes=(
            f"Generic on {FAMILY} n={N}, {len(list(SEEDS))} seeds per run, "
            f"median of {REPEATS} repeats. Criterion: the disabled path "
            f"(obs=None) stays within {DISABLED_CEILING:.2f}x of the "
            "re-timed baseline; recording cost is recorded, not asserted."
        ),
    )

    entry = {
        "date": datetime.date.today().isoformat(),
        "n": N,
        "family": FAMILY,
        "seeds": len(list(SEEDS)),
        "repeats": REPEATS,
        "baseline_ms": round(baseline * 1e3, 3),
        "disabled_ms": round(timings["disabled"] * 1e3, 3),
        "counting_ms": round(timings["counting"] * 1e3, 3),
        "recording_ms": round(timings["recording"] * 1e3, 3),
        "overhead": round(ratios["disabled"], 4),
        "recording_overhead": round(ratios["recording"], 4),
    }
    existing = []
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text()).get("entries", [])
        except (ValueError, AttributeError):
            existing = []
    existing.append(entry)
    BENCH_PATH.write_text(json.dumps({"entries": existing}, indent=1) + "\n")
