"""BENCH: single-core throughput of the simulator hot path.

Times the compiled fast loop (:mod:`repro.sim.fastcore`, the default) and
the legacy object path on identical workloads, interleaved in the same
process, and appends the results to ``BENCH_core.json`` at the repository
root.  Two parts:

* ``test_core_fast_vs_legacy`` (always runs; CI's perf-smoke job) -- the
  n=128 sparse-random comparison workload plus an n=4096 smoke point.
  Each run also cross-checks steps and message totals between the two
  paths, so the benchmark doubles as a coarse differential test (the fine
  one -- traces, per-type counters -- is ``tests/test_fastcore_equivalence``).

  The regression gate is **ratio-based**: absolute wall-clock is not
  comparable across machines, but the fast/legacy speedup measured within
  one process is.  The measured speedup must stay above
  ``REGRESSION_FLOOR`` times the committed baseline's speedup (a >25%
  relative regression of the fast path fails the bench).

* ``test_core_scaling_series`` (opt-in: ``BENCH_CORE_FULL=1``) -- the
  scaling series up to n = 100,000 for the Generic and Ad-hoc engines on
  the fast path, replacing the ``scaling`` block of ``BENCH_core.json``.
  Takes ~2 minutes and >1 GB RSS at the top size, hence opt-in.

* ``test_core_million`` (opt-in: ``BENCH_CORE_MILLION=1``) -- one
  n = 10^6 discovery per engine through the object-free
  :func:`repro.core.arraystate.run_graph` driver with full invariant
  verification, replacing the ``million`` block of ``BENCH_core.json``.
  The object paths cannot represent this size (a million node objects
  cost ~4 GB before the first message); the columnar driver is the only
  engine in the run, so the block records absolute throughput, not a
  ratio.  Takes ~10 minutes and several GB RSS, hence opt-in.
"""

import datetime
import json
import os
import pathlib
import time

import pytest

from repro.analysis.experiments import build_family
from repro.core.runner import build_simulation, default_step_budget

BENCH_PATH = pathlib.Path(__file__).parents[1] / "BENCH_core.json"

FAMILY = "sparse-random"
N_COMPARE = 128
COMPARE_SEEDS = (0, 1, 2)
COMPARE_REPEATS = 15
N_SMOKE = 4096
SMOKE_SEEDS = (0,)
SMOKE_REPEATS = 3
#: Measured speedup must stay above this fraction of the committed one.
REGRESSION_FLOOR = 0.75
SCALING_NS = {
    "generic": (128, 1024, 4096, 10_000, 100_000),
    "adhoc": (1024, 10_000, 100_000),
}
FULL = os.environ.get("BENCH_CORE_FULL", "") == "1"
N_MILLION = 1_000_000
MILLION = os.environ.get("BENCH_CORE_MILLION", "") == "1"


def _run_workload(n, seeds, fast, variant="generic"):
    """Total run()-loop wall time over ``seeds``, plus steps/messages.

    Graph and simulator construction are excluded on purpose: the bench
    measures the hot loop, and the differential totals must match between
    paths regardless of setup cost.
    """
    elapsed = 0.0
    steps = messages = 0
    for seed in seeds:
        graph = build_family(FAMILY, n, seed)
        sim, _nodes = build_simulation(graph, variant, seed=seed, fast=fast)
        budget = default_step_budget(graph)
        start = time.perf_counter()
        steps += sim.run(budget)
        elapsed += time.perf_counter() - start
        messages += sim.stats.total_messages
    return elapsed, steps, messages


def _best_of(n, seeds, repeats, variant="generic"):
    """Interleaved best-of-``repeats`` for both paths on one workload.

    Interleaving (legacy, fast, legacy, fast, ...) makes the pair see the
    same thermal/allocator drift; best-of filters scheduler noise, which
    on shared runners dwarfs the effect under test.
    """
    legacy_best = fast_best = float("inf")
    totals = {}
    for _ in range(repeats):
        for fast in (False, True):
            wall, steps, messages = _run_workload(n, seeds, fast, variant)
            key = "fast" if fast else "legacy"
            totals.setdefault(key, (steps, messages))
            assert totals[key] == (steps, messages)
            if fast:
                fast_best = min(fast_best, wall)
            else:
                legacy_best = min(legacy_best, wall)
    # Coarse differential check: identical step and message totals.
    assert totals["legacy"] == totals["fast"], (
        f"fast/legacy divergence at n={n}: {totals}"
    )
    steps, _messages = totals["fast"]
    return {
        "n": n,
        "seeds": len(seeds),
        "repeats": repeats,
        "legacy_ms": round(legacy_best * 1e3, 3),
        "fast_ms": round(fast_best * 1e3, 3),
        "speedup": round(legacy_best / fast_best, 3),
        "steps_per_s": int(steps / fast_best),
    }


def _load_bench():
    if BENCH_PATH.exists():
        try:
            return json.loads(BENCH_PATH.read_text())
        except ValueError:
            pass
    return {}


def test_core_fast_vs_legacy(benchmark, record_table):
    def run():
        # Warm-up: imports, allocator steady state, fastcore channel interning.
        _run_workload(N_COMPARE, COMPARE_SEEDS, fast=True)
        return {
            "compare": _best_of(N_COMPARE, COMPARE_SEEDS, COMPARE_REPEATS),
            "smoke": _best_of(N_SMOKE, SMOKE_SEEDS, SMOKE_REPEATS),
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    data = _load_bench()
    entries = data.get("entries", [])
    if entries:
        # The perf gate: the fast path's advantage must not collapse.
        baseline = entries[-1]
        for part in ("compare", "smoke"):
            committed = baseline.get(part, {}).get("speedup")
            if committed is None:
                continue
            floor = REGRESSION_FLOOR * committed
            assert measured[part]["speedup"] >= floor, (
                f"{part} (n={measured[part]['n']}): fast-path speedup "
                f"{measured[part]['speedup']:.2f}x fell below "
                f"{floor:.2f}x (committed baseline "
                f"{committed:.2f}x, floor {REGRESSION_FLOOR:.0%})"
            )

    rows = [
        [
            part,
            measured[part]["n"],
            measured[part]["legacy_ms"],
            measured[part]["fast_ms"],
            f"{measured[part]['speedup']:.2f}x",
            measured[part]["steps_per_s"],
        ]
        for part in ("compare", "smoke")
    ]
    record_table(
        "BENCH-core-throughput",
        ["workload", "n", "legacy-ms", "fast-ms", "speedup", "steps/s"],
        rows,
        notes=(
            f"Generic on {FAMILY}, seeded RandomScheduler, best of "
            f"{COMPARE_REPEATS}/{SMOKE_REPEATS} interleaved repeats "
            "(run loop only, setup excluded). Criterion: identical "
            "step/message totals across paths; speedup within "
            f"{REGRESSION_FLOOR:.0%} of the committed baseline."
        ),
    )

    entry = {
        "date": datetime.date.today().isoformat(),
        "family": FAMILY,
        "compare": measured["compare"],
        "smoke": measured["smoke"],
    }
    entries.append(entry)
    data["entries"] = entries
    BENCH_PATH.write_text(json.dumps(data, indent=1) + "\n")


@pytest.mark.skipif(not FULL, reason="set BENCH_CORE_FULL=1 for the scaling series")
def test_core_scaling_series(benchmark, record_table):
    def run():
        series = []
        for variant, sizes in SCALING_NS.items():
            for n in sizes:
                graph = build_family(FAMILY, n, seed=0)
                built = time.perf_counter()
                sim, _nodes = build_simulation(graph, variant, seed=0)
                budget = default_step_budget(graph)
                start = time.perf_counter()
                steps = sim.run(budget)
                wall = time.perf_counter() - start
                series.append(
                    {
                        "engine": variant,
                        "n": n,
                        "build_s": round(start - built, 3),
                        "run_s": round(wall, 3),
                        "steps": steps,
                        "messages": sim.stats.total_messages,
                        "steps_per_s": int(steps / wall),
                    }
                )
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    record_table(
        "BENCH-core-scaling",
        ["engine", "n", "run-s", "steps", "messages", "steps/s"],
        [
            [p["engine"], p["n"], p["run_s"], p["steps"], p["messages"], p["steps_per_s"]]
            for p in series
        ],
        notes=(
            f"Fast path on {FAMILY}, seed 0, single run per size "
            "(run loop only). Criterion: completes n=100,000 for both "
            "engines within the step budget; wall-clock informative."
        ),
    )

    data = _load_bench()
    data["scaling"] = {
        "date": datetime.date.today().isoformat(),
        "family": FAMILY,
        "series": series,
    }
    BENCH_PATH.write_text(json.dumps(data, indent=1) + "\n")


@pytest.mark.skipif(
    not MILLION, reason="set BENCH_CORE_MILLION=1 for the n=10^6 run"
)
def test_core_million(benchmark, record_table):
    from repro.core.arraystate import run_graph

    def run():
        runs = []
        for variant in ("generic", "adhoc"):
            start = time.perf_counter()
            graph = build_family(FAMILY, N_MILLION, seed=0)
            built = time.perf_counter()
            result = run_graph(graph, variant, verify=True)
            wall = time.perf_counter() - built
            assert result.verified, f"{variant}: invariant verification failed"
            assert result.n == N_MILLION
            runs.append(
                {
                    "engine": variant,
                    "n": N_MILLION,
                    "graph_s": round(built - start, 3),
                    "run_s": round(wall, 3),
                    "steps": result.steps,
                    "messages": result.total_messages,
                    "leaders": len(result.leaders),
                    "steps_per_s": int(result.steps / wall),
                    "verified": result.verified,
                }
            )
            del graph, result  # ~GBs each; free before the next engine
        return runs

    runs = benchmark.pedantic(run, rounds=1, iterations=1)

    record_table(
        "BENCH-core-million",
        ["engine", "n", "graph-s", "run-s", "steps", "messages", "steps/s"],
        [
            [p["engine"], p["n"], p["graph_s"], p["run_s"], p["steps"],
             p["messages"], p["steps_per_s"]]
            for p in runs
        ],
        notes=(
            f"run_graph on {FAMILY}, seed 0, global-FIFO, single run per "
            "engine (run_s covers columnar build + run loop + O(n+E) "
            "invariant verification). Criterion: both engines complete "
            "n=10^6 verified within the step budget; wall-clock "
            "informative."
        ),
    )

    data = _load_bench()
    data["million"] = {
        "date": datetime.date.today().isoformat(),
        "family": FAMILY,
        "runs": runs,
    }
    BENCH_PATH.write_text(json.dumps(data, indent=1) + "\n")
