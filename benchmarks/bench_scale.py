"""EXP-16: scale sanity -- the asymptotic shapes persist at 16k nodes.

The other scaling experiments stop at ~1k nodes for breadth; this bench
pushes the three algorithms to n = 16,384 on sparse random graphs and
re-checks every invariant, lemma, and shape criterion at that scale (where
``alpha(n, n)`` is still 2-3 but ``log2 n`` is 14 -- the factor separating
Theorem 5 from Theorem 6 is clearly visible).

Shape criteria:
* all safety invariants and (corrected) lemma bounds hold at n = 16,384;
* generic msgs/(n log n) keeps falling, bounded/adhoc msgs/n stays flat;
* the generic-vs-adhoc message gap widens with n (the 2n log n conquer
  term vs. zero).
"""

import math

from repro.analysis.experiments import build_family
from repro.core.adhoc import run_adhoc
from repro.core.bounded import run_bounded
from repro.core.generic import run_generic
from repro.verification.invariants import verify_discovery
from repro.verification.lemmas import check_all_lemmas

NS = (1024, 4096, 16384)


def test_scale(benchmark, record_table):
    def run():
        rows = []
        for n in NS:
            graph = build_family("sparse-random", n, seed=n)
            per_variant = {}
            for name, runner in (
                ("generic", run_generic),
                ("bounded", run_bounded),
                ("adhoc", run_adhoc),
            ):
                result = runner(graph, seed=1)
                verify_discovery(result, graph)
                checks = check_all_lemmas(result.stats, graph.n, graph.n_edges, name)
                assert all(c.holds for c in checks), [str(c) for c in checks]
                per_variant[name] = result.total_messages
            rows.append(
                [
                    n,
                    per_variant["generic"],
                    per_variant["bounded"],
                    per_variant["adhoc"],
                    per_variant["generic"] / (n * math.log2(n)),
                    per_variant["adhoc"] / n,
                    per_variant["generic"] - per_variant["adhoc"],
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "EXP-16-scale",
        [
            "n",
            "generic msgs",
            "bounded msgs",
            "adhoc msgs",
            "generic/(n log n)",
            "adhoc/n",
            "conquer gap",
        ],
        rows,
        notes=(
            "Criterion: all invariants+lemmas hold at 16k nodes; "
            "generic/(n log n) falls; adhoc/n flat; generic-adhoc gap widens."
        ),
    )
    g_ratio = [row[4] for row in rows]
    a_ratio = [row[5] for row in rows]
    gaps = [row[6] for row in rows]
    assert g_ratio[-1] < g_ratio[0]
    assert max(a_ratio) / min(a_ratio) <= 1.25
    assert gaps[0] < gaps[1] < gaps[2]
