"""EXP-10: Theorem 8 -- dynamic node and link additions.

Adds nodes and links one at a time to a quiescent Ad-hoc network and
measures the marginal message cost, compared against rerunning the whole
algorithm on the final graph.

Shape criteria:
* marginal cost per join / per link is a small constant (near-constant
  amortized, Theorem 8);
* the total incremental cost of the additions is well below a full rerun
  (the paper's open-question answer: "no need to re-run the algorithm each
  time a new component is added").
"""

from repro.analysis.experiments import exp_dynamic_additions


def test_dynamic_additions(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        lambda: exp_dynamic_additions(n_initial=256, n_new=128, links_new=128, seed=4),
        rounds=1,
        iterations=1,
    )
    record_table(
        "EXP-10-dynamic-additions",
        headers,
        rows,
        notes=(
            "Criterion: per-join and per-link marginal messages are small "
            "constants; marginal << rerun (Theorem 8)."
        ),
    )
    values = {row[0]: row[1] for row in rows}
    assert values["per node join"] <= 40
    assert values["per link add"] <= 40
    marginal = (
        values["marginal messages for 128 node joins"]
        + values["marginal messages for 128 link adds"]
    )
    assert marginal < values["from-scratch rerun on final graph"]
