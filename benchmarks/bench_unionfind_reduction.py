"""EXP-2: the Lemma 3.1 Union-Find reduction driving Ad-hoc discovery.

Compiles union/find schedules into knowledge graphs, wakes operation nodes
one at a time, and measures messages per operation.

Shape criteria:
* amortized messages per operation are bounded by a constant (the
  ``alpha`` factor never exceeds 3 at these sizes) across a 16x size range
  -- the Theta(n alpha(n, n)) optimality of Theorems 2 + 6;
* the ratio measured / (m * alpha(m, n)) does not grow with n.
"""

from repro.analysis.experiments import exp_unionfind_reduction

NS = (16, 32, 64, 128, 256)


def test_unionfind_reduction(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        lambda: exp_unionfind_reduction(ns=NS, seed=1), rounds=1, iterations=1
    )
    record_table(
        "EXP-2-unionfind-reduction",
        headers,
        rows,
        notes=(
            "Criterion: msgs/op bounded by a constant; msgs/(m alpha) "
            "non-increasing in n per schedule kind (Theorem 2 optimality)."
        ),
    )
    for kind in ("random", "binomial", "chain"):
        per_op = [row[4] for row in rows if row[0] == kind]
        assert max(per_op) <= 30, (kind, per_op)
        ratios = [row[5] for row in rows if row[0] == kind]
        assert ratios[-1] <= ratios[0] * 1.3, (kind, ratios)
