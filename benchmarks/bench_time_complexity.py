"""EXP-15: time complexity under the normalized asynchronous time measure
(Section 7's discussion).

Every message takes one virtual time unit (``TimedScheduler``); the clock
at quiescence is the execution's time complexity.  Compared against the
synchronous baselines' round counts on the same graphs.

Shape criteria:
* the paper's algorithms complete in Theta(n) time (time/n flat) -- the
  Section 7 remark that this algorithm's time is O(T + n);
* the randomized synchronous baselines finish in polylog rounds, so the
  rounds-vs-time gap *widens* with n (the trade the paper makes for
  asynchrony + optimal messages).
"""

import math

from repro.analysis.experiments import exp_time_complexity

NS = (64, 128, 256, 512)


def test_time_complexity(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        lambda: exp_time_complexity(ns=NS, seed=2), rounds=1, iterations=1
    )
    record_table(
        "EXP-15-time-complexity",
        headers,
        rows,
        notes=(
            "Criterion: generic/adhoc completion time Theta(n) (time/n "
            "flat); baselines polylog rounds; the gap widens with n."
        ),
    )
    per_n = [row[3] for row in rows]
    assert max(per_n) <= 8.0, per_n
    assert max(per_n) / min(per_n) <= 1.6, per_n
    for row in rows:
        n, nd_rounds, ls_rounds = row[0], row[4], row[5]
        assert nd_rounds <= 4 * math.log2(n) ** 2
        assert ls_rounds <= 30 * math.log2(n)
    # The linear-vs-polylog gap must widen: time/rounds grows with n.
    gaps = [row[1] / row[4] for row in rows]
    assert gaps[-1] > gaps[0], gaps
