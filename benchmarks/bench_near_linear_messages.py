"""EXP-4: Bounded and Ad-hoc near-linear message scaling (Theorem 6).

Shape criterion: ``messages / n`` is essentially flat for both variants
(the ``alpha(n, n)`` factor is constant at laptop scales), and both
variants beat the Generic algorithm on the same graphs, with Ad-hoc
cheapest (it skips all conquer traffic).
"""

from repro.analysis.experiments import build_family, exp_near_linear_scaling
from repro.core.generic import run_generic

NS = (64, 128, 256, 512, 1024)


def test_near_linear_scaling(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        lambda: exp_near_linear_scaling(
            ns=NS, variants=("bounded", "adhoc"), families=("sparse-random", "dense-random")
        ),
        rounds=1,
        iterations=1,
    )
    record_table(
        "EXP-4-near-linear-messages",
        headers,
        rows,
        notes="Criterion: msgs/n flat across a 16x range of n (Theorem 6).",
    )
    for variant in ("bounded", "adhoc"):
        for family in ("sparse-random", "dense-random"):
            per_n = [
                row[5] for row in rows if row[0] == variant and row[1] == family
            ]
            assert max(per_n) <= 16, (variant, family, per_n)
            spread = max(per_n) / min(per_n)
            assert spread <= 1.35, (variant, family, per_n)


def test_variant_ordering(benchmark, record_table):
    """Ad-hoc < Bounded < Generic in messages on identical graphs."""

    def run():
        rows = []
        for n in (128, 512):
            graph = build_family("dense-random", n, seed=2)
            from repro.core.adhoc import run_adhoc
            from repro.core.bounded import run_bounded

            generic = run_generic(graph, seed=0).total_messages
            bounded = run_bounded(graph, seed=0).total_messages
            adhoc = run_adhoc(graph, seed=0).total_messages
            rows.append([n, generic, bounded, adhoc])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "EXP-4b-variant-ordering",
        ["n", "generic msgs", "bounded msgs", "adhoc msgs"],
        rows,
        notes="Criterion: adhoc < bounded < generic on every row.",
    )
    for n, generic, bounded, adhoc in rows:
        assert adhoc < bounded < generic, (n, generic, bounded, adhoc)
