"""EXP-18: the paper's headline improvement over Kutten-Peleg [3].

Runs a KP-style asynchronous baseline (full-frontier shipping at merges,
[3]'s O(|E0| log^2 n) bit signature) against the Generic algorithm on
identical dense graphs.

Shape criteria:
* the bit ratio kp/generic exceeds 1 from n=256 on and grows with n (the
  log-factor separation of O(|E0| log^2 n) vs O(|E0| log n + n log^2 n));
* message counts stay within the same O(n log n) class for both.
"""

import math

from repro.analysis.experiments import exp_kp_bit_improvement


def test_kp_bit_improvement(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        lambda: exp_kp_bit_improvement(ns=(128, 256, 512, 1024, 2048), seed=0),
        rounds=1,
        iterations=1,
    )
    record_table(
        "EXP-18-kp-bit-improvement",
        headers,
        rows,
        notes=(
            "Criterion: bit ratio kp-async/generic > 1 and growing with n "
            "(the log-factor the paper shaves off [3])."
        ),
    )
    ratios = [row[4] for row in rows]
    assert ratios[-1] > 1.5
    assert ratios[-1] > ratios[0]
    for row in rows:
        n, kp_msgs, gen_msgs = row[0], row[5], row[6]
        envelope = 6 * n * math.log2(n)
        assert kp_msgs <= envelope and gen_msgs <= envelope
