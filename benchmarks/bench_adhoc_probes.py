"""EXP-12: Ad-hoc probe amortization (Section 4.5.2 / Section 1.3).

Issues many leader probes against a quiescent Ad-hoc network; path
compression on the replies must amortize the cost to
``O((m + n) alpha(m, n))`` total for ``m`` probes.

Shape criteria:
* average messages per probe is a small constant (compressed chains answer
  in 2 messages: one hop up, one reply);
* (probes + discovery) / ((m + n) alpha(m, n)) bounded by a constant.
"""

from repro.analysis.experiments import exp_adhoc_probes


def test_adhoc_probes(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        lambda: exp_adhoc_probes(n=512, probes=2048, seed=6), rounds=1, iterations=1
    )
    record_table(
        "EXP-12-adhoc-probes",
        headers,
        rows,
        notes=(
            "Criterion: per-probe cost ~2 messages after compression; "
            "total within a constant of (m+n) alpha(m,n)."
        ),
    )
    values = {row[0]: row[1] for row in rows}
    assert values["per probe"] <= 4.0
    assert values["probe+discovery / bound"] <= 8.0
