"""EXP-13: the Section 1 observation -- strongly connected graphs admit
O(n)-message resource discovery.

Runs the token-traversal election (Cidon-Gopal-Kutten stand-in) on random
strongly connected graphs.

Shape criterion: messages / n is exactly ``2(n-1)/n`` (~2) at every size --
linear with the constant the construction promises.
"""

from repro.analysis.experiments import exp_strongly_connected

NS = (64, 128, 256, 512, 1024)


def test_strongly_connected_linear(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        lambda: exp_strongly_connected(ns=NS, seed=2), rounds=1, iterations=1
    )
    record_table(
        "EXP-13-strongly-connected",
        headers,
        rows,
        notes="Criterion: messages == 2(n-1) exactly (Section 1 observation).",
    )
    for row in rows:
        n, messages = row[0], row[1]
        assert messages == 2 * (n - 1), row
