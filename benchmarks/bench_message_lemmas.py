"""EXP-6..9: the per-message-type lemmas of Section 5.2.

Regenerates the measured-vs-bound table for Lemmas 5.5 (query traffic,
corrected to 6n -- finding F4), 5.6 (search/release O(n alpha)), 5.7
(merge traffic, corrected to 3n -- finding F1), and 5.8 (conquer traffic,
2n log n generic / 2n bounded / 0 ad-hoc), plus Theorem 7's bit bound.

Shape criterion: every bound holds on every run; additionally the
bounded-variant conquer count is *exactly* ``2(n-1)`` per component (the
single final broadcast) and Ad-hoc sends zero conquers.
"""

from repro.analysis.experiments import exp_message_lemmas


def test_message_lemmas(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        lambda: exp_message_lemmas(
            ns=(64, 256, 1024), variants=("generic", "bounded", "adhoc")
        ),
        rounds=1,
        iterations=1,
    )
    record_table(
        "EXP-6-9-message-lemmas",
        headers,
        rows,
        notes=(
            "Criterion: 'holds' on every row.  Lemma 5.5 and 5.7 use the "
            "corrected constants 6n and 3n (findings F4, F1); the paper's "
            "4n / 2n are exceeded by real schedules."
        ),
    )
    assert all(row[-1] for row in rows), [row for row in rows if not row[-1]]


def test_bounded_final_broadcast_exact(benchmark, record_table):
    from repro.analysis.experiments import build_family
    from repro.core.bounded import run_bounded

    def run():
        rows = []
        for n in (64, 256, 1024):
            graph = build_family("sparse-random", n, seed=5)
            result = run_bounded(graph, seed=1)
            rows.append(
                [
                    n,
                    result.stats.messages("conquer"),
                    result.stats.messages("more-done"),
                    n - 1,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "EXP-9b-bounded-broadcast",
        ["n", "conquer msgs", "more-done acks", "expected (n-1)"],
        rows,
        notes="Criterion: conquer == more-done == n-1 exactly (Theorem 4).",
    )
    for n, conquers, acks, expected in rows:
        assert conquers == expected == acks
