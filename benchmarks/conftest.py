"""Shared plumbing for the benchmark suite.

Every benchmark regenerates one of the experiment tables of DESIGN.md
section 5 (EXP-1 .. EXP-14 plus ablations), asserts its shape criterion,
and records the rendered table under ``benchmarks/results/`` so
EXPERIMENTS.md can be refreshed from the artifacts.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.analysis.registry import save_record
from repro.analysis.tables import render_table
from repro.parallel import ParallelExecutor, ProgressReporter

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Render a table, write it to results/<name>.txt, and echo it."""

    def _record(name: str, headers, rows, notes: str = "") -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = render_table(headers, rows)
        if notes:
            text = f"{text}\n\n{notes.strip()}\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        save_record(RESULTS_DIR, name, headers, rows, metadata={"notes": notes})
        print(f"\n=== {name} ===\n{text}")
        return text

    return _record


@pytest.fixture
def experiment_executor():
    """Opt-in worker pool for seed-sweeping benchmarks.

    ``REPRO_BENCH_WORKERS=8 pytest benchmarks/ ...`` fans the sweeps out
    over 8 forked workers; unset (or 1) keeps the historical serial
    behaviour.  Sweep results are identical either way -- the executor
    collects in submission order (see repro.parallel).
    """
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1") or "1")
    return ParallelExecutor(
        workers=workers, progress=ProgressReporter(enabled=workers > 1)
    )
