"""Ablation benches for the design choices DESIGN.md calls out.

ABL-1 -- query balancing (Section 4.1's ``k = |more| + |done| + 1``):
    with greedy ask-for-everything queries, the ``unexplored <= 2^(phase+1)``
    invariant behind Lemma 5.10 is forfeited and the ids a doomed leader
    hoarded ride along in every ``info`` transfer.  Criterion: info-message
    bits blow up by a large factor under greedy queries on dense graphs.

ABL-2 -- delivery schedule sensitivity:
    the theorems are worst-case over schedules, so message counts under
    FIFO, LIFO and random delivery must all stay within the same envelope.
    Criterion: max/min across schedules below a small factor, and every
    schedule passes the lemma checks (already asserted in tests).
"""

from repro.analysis.experiments import build_family
from repro.core.adhoc import run_adhoc
from repro.core.bounded import run_bounded
from repro.core.generic import run_generic
from repro.graphs.generators import complete_graph
from repro.sim.scheduler import GlobalFifoScheduler, LifoScheduler, RandomScheduler


def test_query_balancing_ablation(benchmark, record_table):
    def run():
        rows = []
        for n in (64, 128, 256):
            graph = complete_graph(n)
            balanced = run_generic(graph, seed=0)
            greedy = run_generic(graph, seed=0, greedy_queries=True)
            rows.append(
                [
                    n,
                    balanced.stats.bits("info"),
                    greedy.stats.bits("info"),
                    greedy.stats.bits("info") / max(1, balanced.stats.bits("info")),
                    balanced.total_bits,
                    greedy.total_bits,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "ABL-1-query-balancing",
        ["n", "info bits (balanced)", "info bits (greedy)", "blowup", "total bits (balanced)", "total bits (greedy)"],
        rows,
        notes=(
            "Criterion: greedy queries inflate info bits by >5x on complete "
            "graphs (Lemma 5.10's invariant ablated)."
        ),
    )
    for row in rows:
        assert row[3] > 5.0, row


def test_schedule_sensitivity_ablation(benchmark, record_table):
    def run():
        rows = []
        graph = build_family("dense-random", 256, seed=7)
        for name, runner in (
            ("generic", run_generic),
            ("bounded", run_bounded),
            ("adhoc", run_adhoc),
        ):
            counts = [
                runner(graph, scheduler=GlobalFifoScheduler()).total_messages,
                runner(graph, scheduler=LifoScheduler()).total_messages,
                runner(graph, scheduler=RandomScheduler(3)).total_messages,
                runner(graph, scheduler=RandomScheduler(11)).total_messages,
            ]
            rows.append([name, *counts, max(counts) / min(counts)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "ABL-2-schedule-sensitivity",
        ["variant", "fifo", "lifo", "random(3)", "random(11)", "max/min"],
        rows,
        notes=(
            "Criterion: message counts within a 2x band across delivery "
            "schedules (worst-case envelope is schedule-independent)."
        ),
    )
    for row in rows:
        assert row[-1] <= 2.0, row
