"""BENCH: steady-state service throughput and SLO conformance.

Runs the ``repro.service`` driver (the ``serve-sim`` regime: open-loop
arrivals, no terminal quiescence) on a Poisson and a bursty workload,
times the full injection + execution loop, and appends the headline SLO
numbers to ``BENCH_service.json`` at the repository root.

Shape criteria (Theorem 8 plus liveness):

* amortized service messages per operation, normalized by
  ``alpha(m, n + n-hat)``, stays below a small constant;
* every injected probe completes (moderate load, generous budget);
* every churn burst reconverges before the next one opens.
"""

import datetime
import json
import pathlib
import time

from repro.analysis.experiments import build_family
from repro.core.adhoc import AdhocNetwork
from repro.service import ServiceDriver, build_workload, summarize_service

BENCH_PATH = pathlib.Path(__file__).parents[1] / "BENCH_service.json"

FAMILY = "sparse-random"
N = 64
SEED = 2
WORKLOADS = (
    ("poisson", dict(rate=10.0, duration=3000)),
    ("bursty", dict(rate=8.0, duration=3000)),
)
#: msgs/(op * alpha) must stay below this constant (Theorem 8's "O(...)").
AMORTIZED_CEILING = 8.0


def _run_one(kind, params):
    graph = build_family(FAMILY, N, SEED)
    workload = build_workload(kind, graph, seed=SEED, **params)
    net = AdhocNetwork(graph, seed=SEED)
    driver = ServiceDriver(net, workload, verify_on_reconvergence=(kind == "bursty"))
    start = time.perf_counter()
    report = driver.run()
    wall = time.perf_counter() - start
    summary = summarize_service(report)
    return report, summary, wall


def test_service_slo_bench(benchmark, record_table):
    def run():
        return {kind: _run_one(kind, params) for kind, params in WORKLOADS}

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    entry_runs = []
    for kind, (report, summary, wall) in measured.items():
        assert not report.budget_exhausted, f"{kind}: step budget exhausted"
        assert summary.probes_incomplete == 0, (
            f"{kind}: {summary.probes_incomplete} probes never completed"
        )
        assert summary.amortized_over_alpha <= AMORTIZED_CEILING, (
            f"{kind}: msgs/(op*alpha) = {summary.amortized_over_alpha:.2f} "
            f"exceeds the Theorem 8 ceiling {AMORTIZED_CEILING}"
        )
        assert summary.bursts_reconverged == summary.bursts_total, (
            f"{kind}: only {summary.bursts_reconverged}/{summary.bursts_total} "
            "bursts reconverged"
        )
        steps_per_s = int(report.steps_executed / wall) if wall > 0 else 0
        rows.append(
            [
                kind,
                summary.operations,
                report.steps_executed,
                summary.latency_p50,
                summary.latency_p95,
                summary.latency_p99,
                round(summary.amortized_cost, 2),
                round(summary.amortized_over_alpha, 2),
                round(wall * 1e3, 1),
            ]
        )
        entry_runs.append(
            {
                "workload": kind,
                "n": N,
                "seed": SEED,
                "operations": summary.operations,
                "steps_executed": report.steps_executed,
                "wall_ms": round(wall * 1e3, 3),
                "steps_per_s": steps_per_s,
                "latency_p50": summary.latency_p50,
                "latency_p95": summary.latency_p95,
                "latency_p99": summary.latency_p99,
                "throughput_per_kstep": round(summary.throughput_per_kstep, 3),
                "amortized_msgs_per_op": round(summary.amortized_cost, 3),
                "amortized_over_alpha": round(summary.amortized_over_alpha, 3),
                "bursts_reconverged": summary.bursts_reconverged,
            }
        )

    record_table(
        "BENCH-service-slo",
        [
            "workload",
            "ops",
            "steps",
            "p50",
            "p95",
            "p99",
            "msgs/op",
            "msgs/(op*alpha)",
            "wall-ms",
        ],
        rows,
        notes=(
            f"Ad-hoc service on {FAMILY} n={N}, open-loop arrivals, virtual-"
            "time latencies. Criterion: all probes complete, all bursts "
            f"reconverge, msgs/(op*alpha) <= {AMORTIZED_CEILING:g}."
        ),
    )

    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except ValueError:
            data = {}
    entries = data.get("entries", [])
    entries.append(
        {"date": datetime.date.today().isoformat(), "runs": entry_runs}
    )
    data["entries"] = entries
    BENCH_PATH.write_text(json.dumps(data, indent=1) + "\n")
