"""BENCH: crash-recovery machinery -- fault-free overhead and reconvergence.

The recovery seam's contract (DESIGN.md section 11) mirrors the
observability layer's: a run without any :class:`RecoverySpec` pays at
most one ``recovery is None`` predicate per transport event, because
:func:`~repro.faults.recovery.attach_recovery` returns ``None`` for plans
with no recoveries and the checkpoint ``observe`` hook is gated on the
wrapper's ``recovery`` attribute.  This benchmark:

* **asserts** the ≤5% fault-free ceiling: a reliable-transport run with
  the recovery seam idle, measured as median-of-repeats against a
  re-timed per-process baseline of the same runs (the baseline is the
  same configuration, so the assertion bounds run-to-run jitter *plus*
  any real regression);
* **records** what an actual crash-recovery execution costs: the
  ``recover-2`` scenario's wall time, steps, time-to-reconverge, epoch
  fences and checkpoint count, appended to ``BENCH_recovery.json`` as the
  trajectory to watch.  Recovery runs are allowed to cost what they cost.
"""

import datetime
import json
import pathlib
import statistics
import time

from repro.analysis.experiments import build_family
from repro.core.runner import build_simulation
from repro.faults.harness import run_chaos_trial
from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.recovery import RecoveryManager, attach_recovery

BENCH_PATH = pathlib.Path(__file__).parents[1] / "BENCH_recovery.json"

N = 96
FAMILY = "sparse-random"
SEEDS = range(3)
REPEATS = 7
RECOVERY_N = 32
RECOVERY_SEEDS = range(3)
#: DESIGN.md section 11's fault-free contract, with headroom for timer
#: jitter on shared CI runners (the contract is 5%; medians over REPEATS
#: keep the measurement itself well under that).
FAULT_FREE_CEILING = 1.05 + 0.05


def _run_fault_free_once():
    """Time the reliable transport with the recovery seam present but idle."""
    elapsed = 0.0
    for seed in SEEDS:
        graph = build_family(FAMILY, N, seed)
        injector = FaultInjector(FaultPlan(), seed=seed, keep_log=False)
        sim, _nodes = build_simulation(
            graph, "generic", seed=seed, faults=injector, reliable=True
        )
        assert attach_recovery(sim, injector) is None  # seam idle by design
        start = time.perf_counter()
        sim.run()
        elapsed += time.perf_counter() - start
    return elapsed


def _median_fault_free():
    return statistics.median(_run_fault_free_once() for _ in range(REPEATS))


def _recovery_trials():
    """Run the recover-2 scenario and collect its telemetry."""
    trials = []
    for seed in RECOVERY_SEEDS:
        start = time.perf_counter()
        trial = run_chaos_trial("recover-2", "generic", n=RECOVERY_N, seed=seed)
        wall = time.perf_counter() - start
        manager = RecoveryManager(trial.plan.recoveries)
        trials.append(
            {
                "seed": seed,
                "outcome": trial.outcome,
                "wall_ms": round(wall * 1e3, 2),
                "steps": trial.steps,
                "n_recovered": trial.n_recovered,
                "reconverge_steps": trial.reconverge_steps,
                "epoch_fences": trial.epoch_fences,
                "retransmissions": trial.retransmissions,
                "victims": sorted(repr(n) for n in manager.specs),
            }
        )
    return trials


def test_recovery_fault_free_overhead(benchmark, record_table):
    def run():
        _run_fault_free_once()  # warm-up: imports, allocator steady state
        return {
            "baseline": _median_fault_free(),
            "fault_free": _median_fault_free(),
            "trials": _recovery_trials(),
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    baseline = measured["baseline"]
    ratio = measured["fault_free"] / baseline
    # The contract under test: no RecoverySpec means no recovery cost.
    assert ratio <= FAULT_FREE_CEILING, (
        f"fault-free overhead {ratio:.3f}x exceeds the "
        f"{FAULT_FREE_CEILING:.2f}x ceiling (baseline {baseline * 1e3:.1f} ms)"
    )
    trials = measured["trials"]
    # Recovery runs must at least complete the restarts they scheduled.
    assert all(t["n_recovered"] == 2 for t in trials)

    rows = [
        ["fault-free", round(measured["fault_free"] * 1e3, 2), f"{ratio:.3f}x"]
    ] + [
        [
            f"recover-2 seed={t['seed']}",
            t["wall_ms"],
            f"{t['outcome']}, reconverge={t['reconverge_steps']}, "
            f"fences={t['epoch_fences']}",
        ]
        for t in trials
    ]
    record_table(
        "BENCH-recovery",
        ["configuration", "ms", "verdict"],
        rows,
        notes=(
            f"Fault-free: generic on {FAMILY} n={N}, {len(list(SEEDS))} seeds "
            f"per run, median of {REPEATS} repeats vs re-timed baseline "
            f"(ceiling {FAULT_FREE_CEILING:.2f}x).  Recovery: recover-2 on "
            f"n={RECOVERY_N} -- two mid-run amnesia crash+restarts; cost "
            "recorded, not asserted."
        ),
    )

    entry = {
        "date": datetime.date.today().isoformat(),
        "n": N,
        "family": FAMILY,
        "seeds": len(list(SEEDS)),
        "repeats": REPEATS,
        "baseline_ms": round(baseline * 1e3, 3),
        "fault_free_ms": round(measured["fault_free"] * 1e3, 3),
        "overhead": round(ratio, 4),
        "recovery_n": RECOVERY_N,
        "recovery_trials": trials,
    }
    existing = []
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text()).get("entries", [])
        except (ValueError, AttributeError):
            existing = []
    existing.append(entry)
    BENCH_PATH.write_text(json.dumps({"entries": existing}, indent=1) + "\n")
