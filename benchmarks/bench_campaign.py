"""BENCH: crash-safe campaign resume does zero redundant work.

Builds a campaign over the strongly-connected discovery sweep, interrupts
it deterministically mid-flight (``max_cells`` plays the role of the
SIGKILL in CI's kill-and-resume smoke job), resumes it, and asserts the
robustness acceptance criteria:

* the resumed run computes **exactly** the cells the interrupted run did
  not finish -- the zero-recompute audit (``redundant == 0``) holds;
* the final aggregate report is **bitwise identical** to the report of an
  uninterrupted control campaign over the same grid.

Wall-clocks for the interrupted, resumed and control phases are appended
to ``BENCH_campaign.json`` at the repository root, together with the
resume overhead ratio (interrupted + resumed vs control) -- the price of
crash safety, which should stay near 1 since the store adds one SQLite
transaction per claim round, not per cell.
"""

import datetime
import json
import pathlib
import time

from repro.campaign import (
    CampaignRunner,
    CampaignStore,
    fold_done_cells,
    report_tables,
)
from repro.parallel import sweep_jobs

BENCH_PATH = pathlib.Path(__file__).parents[1] / "BENCH_campaign.json"

EXPERIMENT = "strongly-connected"
KWARGS = {"ns": (32, 64)}
SEEDS = range(12)
INTERRUPT_AFTER = 5  # cells computed before the simulated crash


def _make_campaign(path):
    jobs = sweep_jobs(EXPERIMENT, SEEDS, KWARGS)
    CampaignStore.create(path, jobs).close()
    return len(jobs)


def _drain(path, max_cells=None):
    store = CampaignStore.open(path)
    try:
        start = time.perf_counter()
        report = CampaignRunner(
            store, max_cells=max_cells, handle_signals=False
        ).run()
        wall = time.perf_counter() - start
    finally:
        store.close()
    return wall, report


def _report_bytes(path):
    store = CampaignStore.open(path)
    try:
        fold_done_cells(store)
        groups = report_tables(store)
    finally:
        store.close()
    return json.dumps(groups, sort_keys=True).encode()


def test_campaign_resume_zero_recompute(benchmark, record_table, tmp_path):
    campaign_db = tmp_path / "campaign.db"
    control_db = tmp_path / "control.db"
    cells = _make_campaign(campaign_db)
    _make_campaign(control_db)

    def run():
        first_wall, first = _drain(campaign_db, max_cells=INTERRUPT_AFTER)
        resume_wall, resumed = _drain(campaign_db)
        control_wall, control = _drain(control_db)
        return first_wall, first, resume_wall, resumed, control_wall, control

    first_wall, first, resume_wall, resumed, control_wall, control = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    # -- acceptance: the resume did exactly the missing work -------------
    assert first.computed == INTERRUPT_AFTER
    assert resumed.computed == cells - INTERRUPT_AFTER
    assert resumed.redundant == 0 and first.redundant == 0
    assert resumed.drained and control.drained

    audit = CampaignStore.open(campaign_db)
    stats = audit.compute_stats()
    audit.close()
    assert stats == {"computed": cells, "redundant": 0}

    # -- acceptance: bitwise-identical aggregate despite the interruption
    assert _report_bytes(campaign_db) == _report_bytes(control_db)

    overhead = (first_wall + resume_wall) / max(control_wall, 1e-9)
    rows = [
        [f"interrupted run ({INTERRUPT_AFTER} cells)", round(first_wall, 3)],
        [f"resumed run ({cells - INTERRUPT_AFTER} cells)", round(resume_wall, 3)],
        [f"uninterrupted control ({cells} cells)", round(control_wall, 3)],
        ["crash-safety overhead ratio", round(overhead, 2)],
        ["redundant recomputes", 0],
    ]
    record_table(
        "BENCH-campaign-resume",
        ["configuration", "value"],
        rows,
        notes=(
            f"{EXPERIMENT} campaign, ns={KWARGS['ns']}, "
            f"{len(list(SEEDS))} cells, interrupted after {INTERRUPT_AFTER}. "
            "Criteria: resume recomputes zero done cells; report bitwise "
            "identical to the uninterrupted control."
        ),
    )

    entry = {
        "date": datetime.date.today().isoformat(),
        "experiment": EXPERIMENT,
        "cells": cells,
        "interrupted_after": INTERRUPT_AFTER,
        "resumed_cells": cells - INTERRUPT_AFTER,
        "redundant": 0,
        "interrupted_s": round(first_wall, 3),
        "resume_s": round(resume_wall, 3),
        "control_s": round(control_wall, 3),
        "overhead_ratio": round(overhead, 3),
        "report_identical": True,
    }
    entries = []
    if BENCH_PATH.exists():
        try:
            entries = json.loads(BENCH_PATH.read_text()).get("entries", [])
        except (ValueError, AttributeError):
            entries = []
    entries.append(entry)
    BENCH_PATH.write_text(json.dumps({"entries": entries}, indent=1) + "\n")
