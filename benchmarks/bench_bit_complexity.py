"""EXP-5: bit complexity (Theorem 7, O(|E0| log n + n log^2 n)).

Shape criterion: ``total bits / (|E0| log n + n log^2 n)`` stays below a
small constant on sparse, dense and layered families, and does not grow
with ``n``.
"""

from repro.analysis.experiments import exp_bit_complexity

NS = (64, 128, 256, 512)
FAMILIES = ("sparse-random", "dense-random", "layered")


def test_bit_complexity(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        lambda: exp_bit_complexity(ns=NS, families=FAMILIES, seed=3),
        rounds=1,
        iterations=1,
    )
    record_table(
        "EXP-5-bit-complexity",
        headers,
        rows,
        notes=(
            "Criterion: bits / (|E0| log n + n log^2 n) bounded by a small "
            "constant and non-increasing (Theorem 7)."
        ),
    )
    for family in FAMILIES:
        ratios = [row[4] for row in rows if row[0] == family]
        assert max(ratios) <= 8.0, (family, ratios)
        assert ratios[-1] <= ratios[0] * 1.2, (family, ratios)
