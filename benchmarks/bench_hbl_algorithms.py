"""EXP-17: the four algorithms of Harchol-Balter, Leighton, Lewin [2].

Reproduces [2]'s internal comparison on strongly connected random graphs
(the only setting where all four converge).

Shape criteria:
* swamping converges in the fewest rounds but is the most message-heavy
  gossip;
* name-dropper needs the fewest messages among [2]'s algorithms;
* pointer-jump sits between them (2 messages per node-round) and, per
  [2]'s observation, diverges on non-strongly-connected graphs (pinned in
  the tests, not here).
"""

from repro.analysis.experiments import exp_hbl_algorithms


def test_hbl_algorithms(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        lambda: exp_hbl_algorithms(ns=(32, 64, 128, 256), seed=1),
        rounds=1,
        iterations=1,
    )
    record_table(
        "EXP-17-hbl-algorithms",
        headers,
        rows,
        notes=(
            "Criterion: swamping fewest rounds / most messages; "
            "name-dropper fewest messages ([2]'s trade-off table)."
        ),
    )
    for n in (64, 128, 256):
        by_name = {row[0]: row for row in rows if row[1] == n}
        rounds = {k: v[2] for k, v in by_name.items()}
        msgs = {k: v[3] for k, v in by_name.items()}
        assert rounds["swamping"] <= min(rounds.values()) + 1
        assert msgs["swamping"] >= max(msgs[k] for k in ("pointer-jump", "name-dropper"))
        assert msgs["name-dropper"] == min(msgs.values())
