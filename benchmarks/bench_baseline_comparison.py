"""EXP-11: the Section 1.1 comparison table across all algorithms.

Regenerates the related-work comparison on one dense weakly connected
graph: messages, bits, rounds/steps for flooding, Name-Dropper [2],
Law-Siu [5], KPV-style [4], and the paper's three algorithms.

Shape criteria (who wins, not absolute numbers):
* flooding loses by an order of magnitude in bits to everything else;
* the paper's Ad-hoc algorithm sends the fewest messages among the
  asynchronous variants, and Generic stays within the n log n envelope;
* Name-Dropper moves more bits than the deterministic algorithms (it
  ships whole neighbour sets every round).
"""

from repro.analysis.experiments import exp_baseline_comparison


def test_baseline_comparison(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        lambda: exp_baseline_comparison(n=512, extra_edges_factor=4, seed=5),
        rounds=1,
        iterations=1,
    )
    record_table(
        "EXP-11-baseline-comparison",
        headers,
        rows,
        notes=(
            "Criterion: flooding >> everyone in bits; adhoc <= bounded <= "
            "generic in messages; name-dropper bit-heavy vs deterministic "
            "algorithms (Section 1.1 relative ordering)."
        ),
    )
    by_name = {row[0]: row for row in rows}
    bits = {name: row[3] for name, row in by_name.items()}
    msgs = {name: row[2] for name, row in by_name.items()}
    gossip_heavy = ("flooding", "swamping [2]", "name-dropper [2]")
    assert bits["flooding"] > 10 * max(
        v for k, v in bits.items() if k not in gossip_heavy
    )
    assert (
        msgs["ad-hoc (this paper)"]
        <= msgs["bounded (this paper)"]
        <= msgs["generic (this paper)"]
    )
    assert bits["name-dropper [2]"] > bits["generic (this paper)"]
