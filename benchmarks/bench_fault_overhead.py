"""BENCH: the price of reliability -- retransmission overhead vs loss rate.

Runs the Generic algorithm under the ack/retransmit transport while the
fault layer drops an increasing fraction of messages, and records what the
recovery costs: overhead messages/bits (``rt-retrans`` + ``rt-ack`` +
``rt-nack``) as a share of total traffic, retransmission counts, and the
step-count price.  Both transport generations run -- ``sr`` (selective
repeat, the default) and ``gbn`` (the v1 go-back-N path) -- so the curve
doubles as the differential cost story.  Safety is asserted on every run
(zero stepwise violations, properties on all survivors).  The v2 transport
additionally carries two **perf-floor assertions** so a regression in the
piggyback/delayed-ack machinery or the adaptive timers fails the bench
instead of silently bending the curve:

* clean-channel overhead share: ``sr`` must stay under
  ``SR_MAX_CLEAN_SHARE`` at loss=0.  The achieved level is ~0.30 against
  gbn's 0.54.  A tighter 0.15 target is structurally unreachable on this
  workload: the discovery run sends a median of two payloads per directed
  pair, every conversation tail still owes one standalone cumulative ack
  after reverse traffic stops, and those ~80 unavoidable tail acks alone
  are ~0.17 of total traffic at n=32 (the share *rises* with n as
  conversations get shorter);
* loss=0.2 latency: ``sr`` must finish in under half the committed gbn
  baseline's virtual-time steps (13914 -> floor at 6957) -- the payoff of
  NACK repair + adaptive RTOs over fixed-timer go-back-N.
"""

import datetime
import json
import pathlib
import statistics

from repro.faults import FaultPlan, run_chaos_trial

BENCH_PATH = pathlib.Path(__file__).parents[1] / "BENCH_faults.json"

LOSS_RATES = (0.0, 0.05, 0.10, 0.20, 0.30)
N = 32
FAMILY = "sparse-random"
SEEDS = range(4)
TRANSPORTS = ("sr", "gbn")

#: Perf floors for the v2 transport (see module docstring).
SR_MAX_CLEAN_SHARE = 0.35
SR_MAX_LOSS20_STEPS = 6957  # half the committed gbn baseline (13914)


def test_fault_overhead(benchmark, record_table):
    def run():
        curve = []
        for transport in TRANSPORTS:
            for loss in LOSS_RATES:
                trials = [
                    run_chaos_trial(
                        FaultPlan(loss=loss),
                        "generic",
                        family=FAMILY,
                        n=N,
                        seed=seed,
                        reliable=True,
                        transport=transport,
                    )
                    for seed in SEEDS
                ]
                curve.append((transport, loss, trials))
        return curve

    curve = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    entries = []
    for transport, loss, trials in curve:
        # The hard criterion: reliability must actually deliver -- every
        # seed quiesces with clean safety and full properties.
        for trial in trials:
            assert trial.safety_ok, (transport, loss, trial.seed, trial.detail)
            assert trial.outcome == "ok", (
                transport,
                loss,
                trial.seed,
                trial.outcome,
                trial.detail,
            )
        mean = lambda xs: statistics.fmean(xs)  # noqa: E731
        overhead_msgs = mean([t.overhead_messages for t in trials])
        total_msgs = mean([t.total_messages for t in trials])
        overhead_bits = mean([t.overhead_bits for t in trials])
        total_bits = mean([t.total_bits for t in trials])
        retrans = mean([t.retransmissions for t in trials])
        steps = mean([t.steps for t in trials])
        if transport == "sr" and loss == 0.0:
            assert overhead_msgs / total_msgs < SR_MAX_CLEAN_SHARE, (
                f"sr clean-channel overhead share {overhead_msgs / total_msgs:.3f} "
                f"regressed past {SR_MAX_CLEAN_SHARE}"
            )
        if transport == "sr" and loss == 0.20:
            assert steps < SR_MAX_LOSS20_STEPS, (
                f"sr loss=0.2 mean steps {steps:.1f} regressed past "
                f"{SR_MAX_LOSS20_STEPS} (half the gbn baseline)"
            )
        rows.append(
            [
                transport,
                f"{loss:.0%}",
                round(total_msgs, 1),
                round(overhead_msgs, 1),
                f"{overhead_msgs / total_msgs:.1%}",
                f"{overhead_bits / total_bits:.1%}",
                round(retrans, 1),
                round(steps, 1),
            ]
        )
        entries.append(
            {
                "date": datetime.date.today().isoformat(),
                "n": N,
                "family": FAMILY,
                "seeds": len(list(SEEDS)),
                "transport": transport,
                "loss": loss,
                "messages": round(total_msgs, 1),
                "overhead_messages": round(overhead_msgs, 1),
                "overhead_msg_share": round(overhead_msgs / total_msgs, 4),
                "overhead_bit_share": round(overhead_bits / total_bits, 4),
                "retransmissions": round(retrans, 1),
                "steps": round(steps, 1),
            }
        )

    record_table(
        "BENCH-fault-overhead",
        [
            "transport",
            "loss",
            "messages",
            "overhead msgs",
            "msg share",
            "bit share",
            "retrans",
            "steps",
        ],
        rows,
        notes=(
            f"Generic + reliable transport, {FAMILY} n={N}, "
            f"{len(list(SEEDS))} seeds per loss rate, both transports. "
            "Criterion: every run quiesces with clean safety and full "
            "properties; sr additionally asserts the clean-channel share "
            f"floor (<{SR_MAX_CLEAN_SHARE}) and the loss=0.2 latency floor "
            f"(<{SR_MAX_LOSS20_STEPS} steps)."
        ),
    )

    existing = []
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text()).get("entries", [])
        except (ValueError, AttributeError):
            existing = []
    existing.extend(entries)
    BENCH_PATH.write_text(json.dumps({"entries": existing}, indent=1) + "\n")
