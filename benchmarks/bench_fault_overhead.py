"""BENCH: the price of reliability -- retransmission overhead vs loss rate.

Runs the Generic algorithm under the ack/retransmit transport while the
fault layer drops an increasing fraction of messages, and records what the
recovery costs: overhead messages/bits (``rt-retrans`` + ``rt-ack``) as a
share of total traffic, retransmission counts, and the step-count price.
Safety is asserted on every run (zero stepwise violations, properties on
all survivors); the *cost curve* is recorded, not asserted -- it is the
``BENCH_faults.json`` perf trajectory at the repository root.
"""

import datetime
import json
import pathlib
import statistics

from repro.faults import FaultPlan, run_chaos_trial

BENCH_PATH = pathlib.Path(__file__).parents[1] / "BENCH_faults.json"

LOSS_RATES = (0.0, 0.05, 0.10, 0.20, 0.30)
N = 32
FAMILY = "sparse-random"
SEEDS = range(4)


def test_fault_overhead(benchmark, record_table):
    def run():
        curve = []
        for loss in LOSS_RATES:
            trials = [
                run_chaos_trial(
                    FaultPlan(loss=loss),
                    "generic",
                    family=FAMILY,
                    n=N,
                    seed=seed,
                    reliable=True,
                )
                for seed in SEEDS
            ]
            curve.append((loss, trials))
        return curve

    curve = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    entries = []
    for loss, trials in curve:
        # The hard criterion: reliability must actually deliver -- every
        # seed quiesces with clean safety and full properties.
        for trial in trials:
            assert trial.safety_ok, (loss, trial.seed, trial.detail)
            assert trial.outcome == "ok", (loss, trial.seed, trial.outcome, trial.detail)
        mean = lambda xs: statistics.fmean(xs)  # noqa: E731
        overhead_msgs = mean([t.overhead_messages for t in trials])
        total_msgs = mean([t.total_messages for t in trials])
        overhead_bits = mean([t.overhead_bits for t in trials])
        total_bits = mean([t.total_bits for t in trials])
        retrans = mean([t.retransmissions for t in trials])
        steps = mean([t.steps for t in trials])
        rows.append(
            [
                f"{loss:.0%}",
                round(total_msgs, 1),
                round(overhead_msgs, 1),
                f"{overhead_msgs / total_msgs:.1%}",
                f"{overhead_bits / total_bits:.1%}",
                round(retrans, 1),
                round(steps, 1),
            ]
        )
        entries.append(
            {
                "date": datetime.date.today().isoformat(),
                "n": N,
                "family": FAMILY,
                "seeds": len(list(SEEDS)),
                "loss": loss,
                "messages": round(total_msgs, 1),
                "overhead_messages": round(overhead_msgs, 1),
                "overhead_msg_share": round(overhead_msgs / total_msgs, 4),
                "overhead_bit_share": round(overhead_bits / total_bits, 4),
                "retransmissions": round(retrans, 1),
                "steps": round(steps, 1),
            }
        )

    record_table(
        "BENCH-fault-overhead",
        ["loss", "messages", "overhead msgs", "msg share", "bit share", "retrans", "steps"],
        rows,
        notes=(
            f"Generic + reliable transport, {FAMILY} n={N}, "
            f"{len(list(SEEDS))} seeds per loss rate. Criterion: every run "
            "quiesces with clean safety and full properties; the overhead "
            "curve is recorded, not asserted."
        ),
    )

    existing = []
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text()).get("entries", [])
        except (ValueError, AttributeError):
            existing = []
    existing.extend(entries)
    BENCH_PATH.write_text(json.dumps({"entries": existing}, indent=1) + "\n")
