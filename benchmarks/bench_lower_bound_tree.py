"""EXP-1: Theorem 1's adversarial lower bound on complete binary trees.

Runs the Generic algorithm on ``T(i)`` (edges toward the leaves) under the
proof's exact adversary -- messages out of every subtree root stalled until
the subtree is quiescent, released deepest-first.

Shape criteria:
* the measured count respects the proven floor ``i * 2^(i-1) - 2`` at every
  height (the lower bound applies to *every* algorithm, ours included);
* measured / floor converges toward a constant (both are Theta(n log n), so
  the algorithm is message-optimal in this model up to constants).
"""

from repro.analysis.experiments import exp_tree_lower_bound

HEIGHTS = (3, 4, 5, 6, 7, 8, 9, 10)


def test_tree_lower_bound(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        lambda: exp_tree_lower_bound(heights=HEIGHTS), rounds=1, iterations=1
    )
    record_table(
        "EXP-1-tree-lower-bound",
        headers,
        rows,
        notes=(
            "Criterion: floor holds everywhere; measured/floor decreasing "
            "toward a constant (Theorem 1 vs Theorem 5 envelope)."
        ),
    )
    assert all(row[-1] for row in rows)
    ratios = [row[4] for row in rows]
    assert all(b <= a for a, b in zip(ratios, ratios[1:])), ratios
    assert ratios[-1] < 6.0
