"""EXP-3: Generic algorithm message scaling (Theorem 5, O(n log n)).

Shape criterion: across every graph family, ``messages / (n log2 n)`` is
bounded and non-increasing as ``n`` grows (an ``n log n`` envelope), while
``messages / n`` keeps growing slowly -- i.e. the curve sits strictly
between linear and ``n log n``.
"""

import math

from repro.analysis.experiments import exp_generic_scaling
from repro.analysis.fitting import best_model

NS = (64, 128, 256, 512, 1024)
FAMILIES = ("star", "sparse-random", "dense-random", "tree", "grid", "community", "preferential")


def test_generic_message_scaling(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        lambda: exp_generic_scaling(ns=NS, families=FAMILIES, seed=1),
        rounds=1,
        iterations=1,
    )
    record_table(
        "EXP-3-generic-messages",
        headers,
        rows,
        notes=(
            "Criterion: msgs/(n log n) bounded and non-increasing per family "
            "(Theorem 5)."
        ),
    )
    for family in FAMILIES:
        ratios = [row[4] for row in rows if row[0] == family]
        assert max(ratios) < 4.0, (family, ratios)
        # Non-increasing trend: the last point must not exceed the first.
        assert ratios[-1] <= ratios[0] * 1.15, (family, ratios)

    # Model fit: n log n (or better) must explain the dense family; a
    # quadratic shape would indicate a broken algorithm.
    dense = [(row[1], row[3]) for row in rows if row[0] == "dense-random"]
    fit = best_model([n for n, _ in dense], [y for _, y in dense])
    assert fit.model.name in ("n", "n alpha(n,n)", "n log n"), str(fit)
