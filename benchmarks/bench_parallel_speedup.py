"""BENCH: serial vs parallel wall-clock on an EXP-16-style scale sweep.

Times the same multi-seed near-linear scaling sweep (the workload behind
EXP-4/EXP-16) twice -- serially and through a 4-worker
:class:`repro.parallel.ParallelExecutor` -- asserts the aggregated tables
are bitwise identical (the engine's determinism guarantee, checked with
zero tolerance), and appends both wall-clocks to ``BENCH_parallel.json``
at the repository root: the first entry in the repo's perf trajectory.

The speedup gate is **keyed off the recorded ``cpus`` field**: committed
baseline entries only constrain runs on matching hardware.  A multi-core
box must stay within ``REGRESSION_FLOOR`` of the best committed multi-core
speedup; a single-core box -- where the worker pool is pure contention and
the committed baseline records a known 0.84x -- is instead held to the
serial-fallback bound (overhead no worse than ``REGRESSION_FLOOR`` of the
committed single-core ratio).  Entries written before the ``cpus`` field
existed are ignored by the gate: hardware-unlabelled numbers are not a
comparable signal, which is exactly the bug this keying fixes (a 1-CPU
runner being judged against an implicit multi-core expectation).
"""

import datetime
import json
import os
import pathlib
import time

from repro.analysis.registry import ExperimentRecord, compare_records
from repro.analysis.sweep import aggregate_tables
from repro.parallel import ParallelExecutor

BENCH_PATH = pathlib.Path(__file__).parents[1] / "BENCH_parallel.json"

EXPERIMENT = "near-linear"
KWARGS = {"ns": (64, 128, 256)}
# 12 seeds at 4 workers x 2 batches/worker -> 8 round-robin batches, so
# the sweep exercises the batched submission path (the fix for the 0.83x
# entry) rather than degenerating to one future per job.
SEEDS = range(12)
WORKERS = 4
#: Measured speedup must stay above this fraction of the committed
#: baseline *for the same cpu class* (multi-core vs single-core).
REGRESSION_FLOOR = 0.75


def _baseline_speedup(entries, multicore):
    """Latest committed speedup for this cpu class, or ``None``.

    Only entries that recorded ``cpus`` participate: an unlabelled entry
    could come from either hardware class, and judging a 1-CPU runner
    against a multi-core number (or vice versa) is a bogus signal.
    """
    baseline = None
    for entry in entries:
        cpus = entry.get("cpus")
        if cpus is None:
            continue
        if (cpus >= 2) == multicore and "speedup" in entry:
            baseline = entry["speedup"]
    return baseline


def _timed_sweep(workers: int):
    executor = ParallelExecutor(workers=workers)
    start = time.perf_counter()
    tables = executor.map_seeds(EXPERIMENT, SEEDS, **KWARGS)
    wall = time.perf_counter() - start
    headers, rows = aggregate_tables(tables)
    return wall, ExperimentRecord(f"{EXPERIMENT}-sweep", headers, rows)


def test_parallel_speedup(benchmark, record_table):
    def run():
        serial_wall, serial_record = _timed_sweep(workers=1)
        parallel_wall, parallel_record = _timed_sweep(workers=WORKERS)
        return serial_wall, serial_record, parallel_wall, parallel_record

    serial_wall, serial_record, parallel_wall, parallel_record = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Determinism: worker count must not change a single bit of the table.
    assert compare_records(serial_record, parallel_record, rel_tolerance=0) == []

    rows = [
        ["serial (workers=1)", round(serial_wall, 3)],
        [f"parallel (workers={WORKERS})", round(parallel_wall, 3)],
        ["speedup", round(serial_wall / max(parallel_wall, 1e-9), 2)],
    ]
    record_table(
        "BENCH-parallel-speedup",
        ["configuration", "value"],
        rows,
        notes=(
            f"{EXPERIMENT} sweep, ns={KWARGS['ns']}, {len(list(SEEDS))} seeds. "
            "Criterion: tables identical at zero tolerance; wall-clock informative."
        ),
    )

    entry = {
        "date": datetime.date.today().isoformat(),
        "experiment": EXPERIMENT,
        "ns": list(KWARGS["ns"]),
        "seeds": len(list(SEEDS)),
        "workers": WORKERS,
        "cpus": os.cpu_count(),
        "serial_s": round(serial_wall, 3),
        "parallel_s": round(parallel_wall, 3),
        "speedup": round(serial_wall / max(parallel_wall, 1e-9), 2),
    }
    entries = []
    if BENCH_PATH.exists():
        try:
            entries = json.loads(BENCH_PATH.read_text()).get("entries", [])
        except (ValueError, AttributeError):
            entries = []

    # -- the cpus-keyed regression gate ---------------------------------
    multicore = (os.cpu_count() or 1) >= 2
    baseline = _baseline_speedup(entries, multicore)
    speedup = entry["speedup"]
    if baseline is not None:
        label = "multi-core" if multicore else "single-core serial-fallback"
        assert speedup >= REGRESSION_FLOOR * baseline, (
            f"{label} speedup regressed: measured {speedup}x vs committed "
            f"{baseline}x baseline (floor {REGRESSION_FLOOR})"
        )
    # With no committed baseline for this cpu class the run is
    # informative only: it *creates* the baseline for the next run.

    entries.append(entry)
    BENCH_PATH.write_text(json.dumps({"entries": entries}, indent=1) + "\n")
