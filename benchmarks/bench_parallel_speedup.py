"""BENCH: serial vs parallel wall-clock on an EXP-16-style scale sweep.

Times the same multi-seed near-linear scaling sweep (the workload behind
EXP-4/EXP-16) twice -- serially and through a 4-worker
:class:`repro.parallel.ParallelExecutor` -- asserts the aggregated tables
are bitwise identical (the engine's determinism guarantee, checked with
zero tolerance), and appends both wall-clocks to ``BENCH_parallel.json``
at the repository root: the first entry in the repo's perf trajectory.

No speedup is *asserted*: CI boxes may have a single core, where the pool
is pure overhead.  The JSON records whatever the hardware gave us.
"""

import datetime
import json
import os
import pathlib
import time

from repro.analysis.registry import ExperimentRecord, compare_records
from repro.analysis.sweep import aggregate_tables
from repro.parallel import ParallelExecutor

BENCH_PATH = pathlib.Path(__file__).parents[1] / "BENCH_parallel.json"

EXPERIMENT = "near-linear"
KWARGS = {"ns": (64, 128, 256)}
# 12 seeds at 4 workers x 2 batches/worker -> 8 round-robin batches, so
# the sweep exercises the batched submission path (the fix for the 0.83x
# entry) rather than degenerating to one future per job.
SEEDS = range(12)
WORKERS = 4


def _timed_sweep(workers: int):
    executor = ParallelExecutor(workers=workers)
    start = time.perf_counter()
    tables = executor.map_seeds(EXPERIMENT, SEEDS, **KWARGS)
    wall = time.perf_counter() - start
    headers, rows = aggregate_tables(tables)
    return wall, ExperimentRecord(f"{EXPERIMENT}-sweep", headers, rows)


def test_parallel_speedup(benchmark, record_table):
    def run():
        serial_wall, serial_record = _timed_sweep(workers=1)
        parallel_wall, parallel_record = _timed_sweep(workers=WORKERS)
        return serial_wall, serial_record, parallel_wall, parallel_record

    serial_wall, serial_record, parallel_wall, parallel_record = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Determinism: worker count must not change a single bit of the table.
    assert compare_records(serial_record, parallel_record, rel_tolerance=0) == []

    rows = [
        ["serial (workers=1)", round(serial_wall, 3)],
        [f"parallel (workers={WORKERS})", round(parallel_wall, 3)],
        ["speedup", round(serial_wall / max(parallel_wall, 1e-9), 2)],
    ]
    record_table(
        "BENCH-parallel-speedup",
        ["configuration", "value"],
        rows,
        notes=(
            f"{EXPERIMENT} sweep, ns={KWARGS['ns']}, {len(list(SEEDS))} seeds. "
            "Criterion: tables identical at zero tolerance; wall-clock informative."
        ),
    )

    entry = {
        "date": datetime.date.today().isoformat(),
        "experiment": EXPERIMENT,
        "ns": list(KWARGS["ns"]),
        "seeds": len(list(SEEDS)),
        "workers": WORKERS,
        "cpus": os.cpu_count(),
        "serial_s": round(serial_wall, 3),
        "parallel_s": round(parallel_wall, 3),
        "speedup": round(serial_wall / max(parallel_wall, 1e-9), 2),
    }
    entries = []
    if BENCH_PATH.exists():
        try:
            entries = json.loads(BENCH_PATH.read_text()).get("entries", [])
        except (ValueError, AttributeError):
            entries = []
    entries.append(entry)
    BENCH_PATH.write_text(json.dumps({"entries": entries}, indent=1) + "\n")
