"""The Theorem 1 adversary, live (lower bounds you can watch).

Runs the Generic algorithm on complete binary trees ``T(i)`` (all edges
toward the leaves) under the proof's message-delay adversary: everything a
subtree root sends is stalled until its subtree is quiescent, releases
happening deepest-first.  Prints measured messages against the theorem's
``i * 2^(i-1) - 2`` floor, plus how sensitive the algorithm is to benign
schedule choices.

Run:  python examples/adversarial_schedules.py
"""

from repro import (
    GlobalFifoScheduler,
    LifoScheduler,
    RandomScheduler,
    complete_binary_tree,
    run_generic,
)
from repro.lowerbounds import run_tree_lower_bound


def main() -> None:
    print("Theorem 1 adversary on T(i), i = 3..9:")
    print(f"{'i':>3} {'n':>6} {'measured':>9} {'floor':>7} {'ratio':>6}")
    for height in range(3, 10):
        outcome = run_tree_lower_bound(height)
        assert outcome.respects_floor
        print(
            f"{height:>3} {outcome.n:>6} {outcome.measured_messages:>9} "
            f"{outcome.theorem_floor:>7} "
            f"{outcome.measured_messages / outcome.theorem_floor:>6.2f}"
        )
    print(
        "\nthe ratio tends to a constant: the Generic algorithm is "
        "message-optimal (Theta(n log n)) against this adversary.\n"
    )

    print("schedule sensitivity on T(8) (benign schedules):")
    graph = complete_binary_tree(8)
    for name, scheduler in (
        ("global FIFO", GlobalFifoScheduler()),
        ("LIFO (depth-first)", LifoScheduler()),
        ("random seed=1", RandomScheduler(1)),
        ("random seed=2", RandomScheduler(2)),
    ):
        result = run_generic(graph, scheduler=scheduler)
        print(f"  {name:<20} {result.total_messages:>6} messages")
    adversarial = run_tree_lower_bound(8)
    print(f"  {'Theorem 1 adversary':<20} {adversarial.measured_messages:>6} messages")


if __name__ == "__main__":
    main()
