"""The paper's motivating pipeline, end to end.

Section 1: peers that initially know only a few addresses use Resource
Discovery to learn the full membership, and "once all peers ... get to
know of each other they may cooperate on joint tasks (for example ...
build an overlay network and form a distributed hash table)".

This example runs that pipeline:

1. bootstrap graph: 150 peers, each knowing a handful of addresses;
2. Ad-hoc Resource Discovery to quiescence (optimal Theta(n alpha)
   messages); every peer fetches the membership with one probe;
3. each peer *independently* computes the same canonical Chord-style ring
   (`repro.overlay`) from that membership -- no further coordination;
4. greedy finger routing resolves lookups in O(log n) hops.

Run:  python examples/overlay_pipeline.py
"""

import math
import random

from repro import AdhocNetwork, RingOverlay, preferential_attachment


def main() -> None:
    rng = random.Random(2003)
    bootstrap = preferential_attachment(150, out_degree=3, seed=2003)
    print(
        f"bootstrap: {bootstrap.n} peers, each knowing <= 3 addresses "
        f"(|E0| = {bootstrap.n_edges})"
    )

    net = AdhocNetwork(bootstrap, seed=2003)
    net.run()
    result = net.result()
    print(
        f"discovery: leader {result.leaders[0]} after "
        f"{net.stats.total_messages} messages "
        f"({net.stats.total_messages / bootstrap.n:.1f} per peer)"
    )

    # Any peer can fetch the membership with a probe (2 messages once
    # paths are compressed) and build the same ring locally.
    peer = rng.choice(bootstrap.nodes)
    _leader, members = net.probe(peer)
    ring = RingOverlay.from_membership(members)
    print(
        f"overlay: peer {peer} built a ring over {ring.n} members with "
        f"{len(ring.fingers[ring.order[0]])} fingers each"
    )

    hops = []
    for _ in range(200):
        start = rng.choice(ring.order)
        key = rng.choice(ring.order)
        hops.append(len(ring.lookup_path(start, key)) - 1)
    print(
        f"routing: 200 random lookups, avg {sum(hops) / len(hops):.2f} hops, "
        f"max {max(hops)} (log2 n = {math.log2(ring.n):.1f})"
    )
    assert max(hops) <= math.log2(ring.n) + 1


if __name__ == "__main__":
    main()
