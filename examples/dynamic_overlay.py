"""A long-lived Ad-hoc discovery service under churn (Section 6).

Boots a small network, then feeds it a stream of join and link events,
measuring the *marginal* message cost of each -- the paper's Theorem 8:
dynamic additions cost near-linear in the number of additions, so there is
no need to re-run discovery from scratch.  Peers also issue ``probe``
requests to fetch current membership snapshots (Section 4.5.2).

Run:  python examples/dynamic_overlay.py
"""

import random

from repro import AdhocNetwork, random_weakly_connected, run_adhoc, verify_discovery


def main() -> None:
    rng = random.Random(11)
    bootstrap = random_weakly_connected(100, extra_edges=200, seed=11)
    net = AdhocNetwork(bootstrap, seed=11)
    net.run()
    print(
        f"bootstrap: n={net.graph.n}, discovery cost "
        f"{net.stats.total_messages} messages"
    )

    join_costs = []
    link_costs = []
    next_id = bootstrap.n
    for event in range(120):
        before = net.stats.snapshot()
        if rng.random() < 0.5:
            known = rng.sample(net.graph.nodes, k=2)
            net.add_node(next_id, known)
            next_id += 1
            net.run()
            join_costs.append(net.stats.delta_since(before).total_messages)
        else:
            u, v = rng.sample(net.graph.nodes, k=2)
            net.add_link(u, v)
            net.run()
            link_costs.append(net.stats.delta_since(before).total_messages)

    result = net.result()
    verify_discovery(result, net.graph)
    print(f"\nafter churn: n={net.graph.n}, still one leader: {result.leaders}")
    print(
        f"  {len(join_costs)} joins, avg {sum(join_costs) / len(join_costs):.1f} "
        f"messages each (max {max(join_costs)})"
    )
    print(
        f"  {len(link_costs)} link adds, avg "
        f"{sum(link_costs) / max(1, len(link_costs)):.1f} messages each"
    )

    rerun = run_adhoc(net.graph, seed=11)
    incremental = sum(join_costs) + sum(link_costs)
    print(
        f"\nTheorem 8 in action: incorporating all additions cost "
        f"{incremental} messages, vs {rerun.total_messages} for a fresh "
        f"run on the final graph"
    )

    print("\nmembership probes (path compression on the replies):")
    for _ in range(3):
        peer = rng.choice(net.graph.nodes)
        before = net.stats.snapshot()
        leader, ids = net.probe(peer)
        cost = net.stats.delta_since(before).total_messages
        print(
            f"  peer {peer}: leader={leader}, |members|={len(ids)}, "
            f"{cost} messages"
        )


if __name__ == "__main__":
    main()
