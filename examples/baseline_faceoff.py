"""Face-off: the paper's algorithms vs. the prior-work baselines.

Regenerates the Section 1.1 comparison on one weakly connected graph:
flooding (folklore), Name-Dropper (Harchol-Balter, Leighton, Lewin),
Law-Siu, a KPV-style deterministic synchronous algorithm, and the paper's
Generic / Bounded / Ad-hoc asynchronous algorithms -- plus the strongly
connected special case from Section 1.

Run:  python examples/baseline_faceoff.py
"""

from repro.analysis.experiments import exp_baseline_comparison, exp_strongly_connected
from repro.analysis.tables import render_table


def main() -> None:
    print("weakly connected graph, n=256, |E0| ~ 4n:\n")
    headers, rows = exp_baseline_comparison(n=256, extra_edges_factor=4, seed=3)
    print(render_table(headers, rows))
    print(
        "\nreading the table: flooding pays quadratic-ish bits; the "
        "randomized baselines need O(n log n)+ messages; the paper's "
        "Ad-hoc algorithm is the cheapest in messages (Theta(n alpha)) "
        "while staying asynchronous and deterministic.\n"
    )

    print("strongly connected special case (Section 1): O(n) messages:\n")
    headers, rows = exp_strongly_connected(ns=(64, 256, 1024))
    print(render_table(headers, rows))


if __name__ == "__main__":
    main()
