"""Watch the protocol run: an annotated trace of a tiny execution.

Runs the Ad-hoc algorithm on a 4-node knowledge graph with full tracing
and renders the execution as an ASCII sequence diagram -- every search
routing along ``next`` pointers, every release path-compressing on the way
back, the merge handshake, and the info transfer are visible.

Run:  python examples/trace_walkthrough.py
"""

from repro import KnowledgeGraph
from repro.analysis.traceview import format_trace, sequence_diagram, trace_summary
from repro.core.result import collect_result
from repro.core.runner import build_simulation
from repro.verification.invariants import verify_discovery


def main() -> None:
    # d knows c, c knows b, b knows a: a chain of one-way knowledge.
    graph = KnowledgeGraph(
        ["a", "b", "c", "d"], [("d", "c"), ("c", "b"), ("b", "a")]
    )
    sim, nodes = build_simulation(graph, "adhoc", keep_trace=True)
    sim.run(10_000)
    result = collect_result(graph, nodes, sim, "adhoc")
    verify_discovery(result, graph)

    print("knowledge graph: d->c->b->a (one-way knowledge chain)\n")
    print(sequence_diagram(sim.trace, graph.nodes, lane_width=16))
    print()
    print(
        f"outcome: leader {result.leaders[0]!r} knows "
        f"{sorted(result.knowledge[result.leaders[0]])}"
    )
    print(f"messages: {dict(sorted(result.stats.messages_by_type.items()))}")
    print(f"event summary: {dict(sorted(trace_summary(sim.trace).items()))}")
    print("\nplain event log (first 12 events):")
    print(format_trace(sim.trace, limit=12))


if __name__ == "__main__":
    main()
