"""Repairing a damaged peer-to-peer system (the paper's motivating use).

Section 1: "Consider a system in which many of the nodes were either reset
or totally removed ... The first step toward rebuilding such a system is
discovering and regrouping all the currently online nodes."

This example simulates exactly that:

1. a healthy ring-with-fingers overlay of 300 peers;
2. a catastrophic failure removes 60% of the peers; the survivors keep
   only the finger-table entries that still point at live peers -- a
   sparse, weakly connected-at-best knowledge graph;
3. the survivors in each surviving fragment run Ad-hoc Resource Discovery
   to regroup; the elected leader of each fragment learns the full live
   membership;
4. each fragment rebuilds a clean ring overlay from the discovered
   membership.

Run:  python examples/p2p_repair.py
"""

import random

from repro import (
    KnowledgeGraph,
    run_adhoc,
    verify_discovery,
    weakly_connected_components,
)


def build_overlay(n: int, fingers: int, rng: random.Random) -> KnowledgeGraph:
    """A ring where each peer also knows ``fingers`` random long links."""
    graph = KnowledgeGraph(range(n))
    for i in range(n):
        graph.add_edge(i, (i + 1) % n)
        for _ in range(fingers):
            target = rng.randrange(n)
            if target != i:
                graph.add_edge(i, target)
    return graph


def crash(graph: KnowledgeGraph, survival: float, rng: random.Random) -> KnowledgeGraph:
    """Keep each peer with probability ``survival``; drop dead endpoints."""
    survivors = [node for node in graph.nodes if rng.random() < survival]
    alive = set(survivors)
    damaged = KnowledgeGraph(survivors)
    for u, v in graph.edges():
        if u in alive and v in alive:
            damaged.add_edge(u, v)
    return damaged


def main() -> None:
    rng = random.Random(2003)
    healthy = build_overlay(300, fingers=3, rng=rng)
    print(f"healthy overlay: n={healthy.n} |E|={healthy.n_edges}")

    damaged = crash(healthy, survival=0.4, rng=rng)
    fragments = weakly_connected_components(damaged)
    print(
        f"after the crash: {damaged.n} survivors, {damaged.n_edges} live "
        f"links, {len(fragments)} knowledge fragment(s)"
    )

    result = run_adhoc(damaged, seed=2003)
    verify_discovery(result, damaged)
    print(
        f"\nresource discovery regrouped every fragment: "
        f"{len(result.leaders)} leader(s), {result.total_messages} messages, "
        f"{result.total_bits} bits"
    )

    for leader in result.leaders:
        members = sorted(result.knowledge[leader])
        ring = [
            (members[i], members[(i + 1) % len(members)])
            for i in range(len(members))
        ]
        print(
            f"  leader {leader}: rebuilt a {len(members)}-peer ring "
            f"({ring[0][0]} -> {ring[0][1]} -> ... -> {ring[-1][1]})"
        )

    # Sanity: every survivor is in exactly one rebuilt ring.
    covered = set()
    for leader in result.leaders:
        covered |= result.knowledge[leader]
    assert covered == set(damaged.nodes)
    print("\nevery survivor is part of exactly one rebuilt overlay -- done")


if __name__ == "__main__":
    main()
