"""Quickstart: run all three discovery algorithms on one knowledge graph.

Builds a random weakly connected knowledge graph (every peer initially
knows a few ids, nobody knows everyone), runs the paper's Generic, Bounded
and Ad-hoc algorithms to quiescence, verifies the problem's properties, and
prints the cost accounting.

Run:  python examples/quickstart.py
"""

from repro import (
    check_all_lemmas,
    random_weakly_connected,
    run_adhoc,
    run_bounded,
    run_generic,
    verify_discovery,
)


def main() -> None:
    graph = random_weakly_connected(200, extra_edges=500, seed=7)
    print(f"knowledge graph: n={graph.n} |E0|={graph.n_edges}\n")

    for name, runner in (
        ("generic (size unknown)", run_generic),
        ("bounded (size known, terminates)", run_bounded),
        ("ad-hoc  (pointer paths)", run_adhoc),
    ):
        result = runner(graph, seed=7)
        report = verify_discovery(result, graph)  # raises on any violation
        leader = result.leaders[0]
        print(f"== {name}")
        print(f"   leader {leader}, knows {len(result.knowledge[leader])} ids")
        print(
            f"   messages={result.total_messages}  bits={result.total_bits}  "
            f"steps={result.steps}  max pointer path={result.max_path_length}"
        )
        for msg_type in sorted(result.stats.messages_by_type):
            count = result.stats.messages_by_type[msg_type]
            print(f"     {msg_type:<12} {count}")
        checks = check_all_lemmas(result.stats, graph.n, graph.n_edges, result.variant)
        assert all(check.holds for check in checks)
        print(f"   all {len(checks)} complexity bounds hold\n")


if __name__ == "__main__":
    main()
