"""Schedule debugging: record a randomized execution, replay it exactly.

Asynchronous bugs are schedule bugs.  This example shows the workflow used
to pin this repository's reproduction findings F2/F3:

1. run the protocol under a seeded random schedule, *recording* every
   scheduling decision;
2. replay the recording step for step -- identical trace, identical
   message counts -- ready for breakpoints or extra assertions;
3. see the replayer's divergence detection catch a code/topology change
   that invalidates the recording.

Run:  python examples/schedule_debugging.py
"""

from repro import random_weakly_connected
from repro.core.result import collect_result
from repro.core.runner import build_simulation
from repro.sim.replay import RecordingScheduler, ReplayDivergence, ReplayScheduler
from repro.sim.scheduler import RandomScheduler


def main() -> None:
    graph = random_weakly_connected(40, 80, seed=5)

    # 1. Record.
    recorder = RecordingScheduler(RandomScheduler(seed=42))
    sim, nodes = build_simulation(graph, "generic", scheduler=recorder, keep_trace=True)
    sim.run(10**7)
    original = collect_result(graph, nodes, sim, "generic")
    fingerprint = sim.trace.fingerprint()
    print(
        f"recorded run: {original.total_messages} messages over "
        f"{len(recorder.decisions)} scheduling decisions, "
        f"leader {original.leaders[0]}"
    )

    # 2. Replay.
    replayer = ReplayScheduler(recorder.decisions)
    sim2, nodes2 = build_simulation(graph, "generic", scheduler=replayer, keep_trace=True)
    sim2.run(10**7)
    replayed = collect_result(graph, nodes2, sim2, "generic")
    assert sim2.trace.fingerprint() == fingerprint
    assert replayed.stats.messages_by_type == original.stats.messages_by_type
    print("replay: identical trace fingerprint and per-type message counts")

    # 3. Divergence detection.
    different_graph = random_weakly_connected(40, 80, seed=6)
    sim3, _ = build_simulation(
        different_graph, "generic", scheduler=ReplayScheduler(recorder.decisions)
    )
    try:
        sim3.run(10**7)
    except ReplayDivergence as exc:
        print(f"divergence caught as designed: {str(exc)[:80]}...")


if __name__ == "__main__":
    main()
